#include "xbar/bb_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"
#include "util/random.h"

namespace stx::xbar {

namespace {

constexpr cycle_t kNoIncumbent = std::numeric_limits<cycle_t>::max();

/// Shared DFS engine for feasibility / optimisation / random binding.
class xbar_search {
 public:
  enum class mode { feasibility, optimize, random };

  xbar_search(const synthesis_input& input, int num_buses, mode m,
              const solver_options& opts, std::uint64_t seed)
      : input_(input),
        num_buses_(num_buses),
        mode_(m),
        opts_(opts),
        rng_(seed) {
    const int T = input.num_targets();

    // Hardest-first target order: high peak demand and high conflict
    // degree first (fail-first keeps the tree small). Random mode keeps
    // a shuffled order instead.
    order_.resize(static_cast<std::size_t>(T));
    std::iota(order_.begin(), order_.end(), 0);
    if (mode_ == mode::random) {
      rng_.shuffle(order_);
    } else {
      std::vector<double> score(static_cast<std::size_t>(T), 0.0);
      for (int i = 0; i < T; ++i) {
        double s = 0.0;
        for (int m2 = 0; m2 < input.num_windows(); ++m2) {
          s += static_cast<double>(input.comm(i, m2));
        }
        int deg = 0;
        for (int j = 0; j < T; ++j) {
          if (j != i && input.conflict(i, j)) ++deg;
        }
        score[static_cast<std::size_t>(i)] =
            s + static_cast<double>(deg) *
                    static_cast<double>(input.window_size());
      }
      std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
        return score[static_cast<std::size_t>(a)] >
               score[static_cast<std::size_t>(b)];
      });
    }

    // Sparse per-target window demands.
    demand_.resize(static_cast<std::size_t>(T));
    for (int i = 0; i < T; ++i) {
      for (int m2 = 0; m2 < input.num_windows(); ++m2) {
        const cycle_t c = input.comm(i, m2);
        if (c > 0) {
          demand_[static_cast<std::size_t>(i)].emplace_back(m2, c);
        }
      }
    }

    load_.assign(static_cast<std::size_t>(num_buses_),
                 std::vector<cycle_t>(
                     static_cast<std::size_t>(input.num_windows()), 0));
    members_.assign(static_cast<std::size_t>(num_buses_), {});
    bus_overlap_.assign(static_cast<std::size_t>(num_buses_), 0);
    binding_.assign(static_cast<std::size_t>(T), -1);
    start_ = std::chrono::steady_clock::now();
  }

  /// Runs the search; returns true when an answer (sat or proven unsat)
  /// was reached within limits.
  bool run() {
    found_ = dfs(0, 0);
    return !limit_hit_;
  }

  bool found() const { return found_ || !best_binding_.empty(); }
  const std::vector<int>& best_binding() const { return best_binding_; }
  cycle_t best_overlap() const { return best_overlap_; }
  std::int64_t nodes() const { return nodes_; }
  bool complete() const { return !limit_hit_; }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  bool out_of_budget() {
    if (nodes_ >= opts_.max_nodes) return true;
    if ((nodes_ & 0x3ff) == 0) {
      if (opts_.cancel != nullptr &&
          opts_.cancel->load(std::memory_order_relaxed)) {
        return true;  // portfolio loser: stop as if the time limit fired
      }
      if (opts_.time_limit_sec > 0.0 && seconds() > opts_.time_limit_sec) {
        return true;
      }
    }
    return false;
  }

  /// Current maximum per-bus overlap (the running Eq. 11 objective).
  cycle_t current_max_overlap() const {
    cycle_t best = 0;
    for (cycle_t v : bus_overlap_) best = std::max(best, v);
    return best;
  }

  /// Overlap this target would add to bus k (sum of om with members).
  cycle_t overlap_delta(int target, int k) const {
    cycle_t acc = 0;
    for (int m : members_[static_cast<std::size_t>(k)]) {
      acc += input_.om(target, m);
    }
    return acc;
  }

  bool placement_ok(int target, int k) const {
    const int maxtb = input_.params().max_targets_per_bus;
    if (maxtb > 0 &&
        static_cast<int>(members_[static_cast<std::size_t>(k)].size()) >=
            maxtb) {
      return false;
    }
    for (int m : members_[static_cast<std::size_t>(k)]) {
      if (input_.conflict(target, m)) return false;
    }
    for (const auto& [w, c] : demand_[static_cast<std::size_t>(target)]) {
      if (load_[static_cast<std::size_t>(k)][static_cast<std::size_t>(w)] +
              c >
          input_.capacity(w)) {
        return false;
      }
    }
    return true;
  }

  void place(int target, int k) {
    binding_[static_cast<std::size_t>(target)] = k;
    bus_overlap_[static_cast<std::size_t>(k)] += overlap_delta(target, k);
    members_[static_cast<std::size_t>(k)].push_back(target);
    for (const auto& [w, c] : demand_[static_cast<std::size_t>(target)]) {
      load_[static_cast<std::size_t>(k)][static_cast<std::size_t>(w)] += c;
    }
  }

  void unplace(int target, int k) {
    members_[static_cast<std::size_t>(k)].pop_back();
    bus_overlap_[static_cast<std::size_t>(k)] -= overlap_delta(target, k);
    for (const auto& [w, c] : demand_[static_cast<std::size_t>(target)]) {
      load_[static_cast<std::size_t>(k)][static_cast<std::size_t>(w)] -= c;
    }
    binding_[static_cast<std::size_t>(target)] = -1;
  }

  /// `used` = number of buses currently holding at least one target.
  bool dfs(std::size_t depth, int used) {
    if (out_of_budget()) {
      limit_hit_ = true;
      return false;
    }
    ++nodes_;

    if (depth == order_.size()) {
      if (mode_ == mode::optimize) {
        const cycle_t obj = current_max_overlap();
        if (obj < best_overlap_) {
          best_overlap_ = obj;
          best_binding_ = binding_;
        }
        return false;  // keep searching for better bindings
      }
      best_binding_ = binding_;
      best_overlap_ = current_max_overlap();
      return true;  // feasibility / random: first solution wins
    }

    const int target = order_[depth];
    // Symmetry breaking: existing buses plus at most one fresh bus.
    const int reach = std::min(used + 1, num_buses_);
    std::vector<int> candidates;
    candidates.reserve(static_cast<std::size_t>(reach));
    for (int k = 0; k < reach; ++k) candidates.push_back(k);

    if (mode_ == mode::random) {
      rng_.shuffle(candidates);
    } else if (mode_ == mode::optimize) {
      // Cheapest-overlap-first child order finds tight incumbents early.
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](int a, int b) {
                         return overlap_delta(target, a) <
                                overlap_delta(target, b);
                       });
    }

    for (int k : candidates) {
      if (!placement_ok(target, k)) continue;
      if (mode_ == mode::optimize) {
        // Bound: max overlap only grows as targets are added.
        const cycle_t next =
            bus_overlap_[static_cast<std::size_t>(k)] +
            overlap_delta(target, k);
        if (std::max(current_max_overlap(), next) >= best_overlap_) {
          continue;
        }
      }
      place(target, k);
      const int next_used =
          used + (members_[static_cast<std::size_t>(k)].size() == 1 ? 1 : 0);
      if (dfs(depth + 1, next_used)) return true;
      unplace(target, k);
      if (limit_hit_) return false;
    }
    return false;
  }

  const synthesis_input& input_;
  int num_buses_;
  mode mode_;
  solver_options opts_;
  rng rng_;

  std::vector<int> order_;
  std::vector<std::vector<std::pair<int, cycle_t>>> demand_;
  std::vector<std::vector<cycle_t>> load_;
  std::vector<std::vector<int>> members_;
  std::vector<cycle_t> bus_overlap_;
  std::vector<int> binding_;

  std::vector<int> best_binding_;
  cycle_t best_overlap_ = kNoIncumbent;
  bool found_ = false;
  bool limit_hit_ = false;
  std::int64_t nodes_ = 0;
  std::chrono::steady_clock::time_point start_;
};

void fill_stats(const xbar_search& search, solve_stats* stats) {
  if (stats == nullptr) return;
  stats->nodes = search.nodes();
  stats->complete = search.complete();
  stats->seconds = search.seconds();
}

}  // namespace

int lower_bound_buses(const synthesis_input& input) {
  const int T = input.num_targets();
  int lb = 1;

  // Bandwidth: every window's total demand must fit in B buses.
  for (int m = 0; m < input.num_windows(); ++m) {
    cycle_t total = 0;
    for (int i = 0; i < T; ++i) total += input.comm(i, m);
    const auto need = static_cast<int>(
        (total + input.capacity(m) - 1) / input.capacity(m));
    lb = std::max(lb, need);
  }

  // Cardinality (Eq. 8).
  const int maxtb = input.params().max_targets_per_bus;
  if (maxtb > 0) lb = std::max(lb, (T + maxtb - 1) / maxtb);

  // Conflict clique (greedy): every clique member needs its own bus.
  std::vector<int> degree(static_cast<std::size_t>(T), 0);
  for (int i = 0; i < T; ++i) {
    for (int j = 0; j < T; ++j) {
      if (i != j && input.conflict(i, j)) {
        ++degree[static_cast<std::size_t>(i)];
      }
    }
  }
  std::vector<int> by_degree(static_cast<std::size_t>(T));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](int a, int b) {
    return degree[static_cast<std::size_t>(a)] >
           degree[static_cast<std::size_t>(b)];
  });
  std::vector<int> clique;
  for (int v : by_degree) {
    bool joins = true;
    for (int u : clique) {
      if (!input.conflict(u, v)) {
        joins = false;
        break;
      }
    }
    if (joins) clique.push_back(v);
  }
  lb = std::max(lb, static_cast<int>(clique.size()));
  return std::min(lb, std::max(T, 1));
}

std::optional<std::vector<int>> find_feasible_binding(
    const synthesis_input& input, int num_buses, const solver_options& opts,
    solve_stats* stats) {
  STX_REQUIRE(num_buses >= 1, "need at least one bus");
  if (lower_bound_buses(input) > num_buses) {
    if (stats != nullptr) *stats = {0, true, 0.0};
    return std::nullopt;  // proven infeasible without search
  }
  xbar_search search(input, num_buses, xbar_search::mode::feasibility, opts,
                     /*seed=*/1);
  const bool answered = search.run();
  fill_stats(search, stats);
  STX_REQUIRE(answered, "feasibility search hit limits; raise solver_options");
  if (!search.found()) return std::nullopt;
  auto binding = search.best_binding();
  STX_ENSURE(input.binding_feasible(binding, num_buses),
             "solver produced an infeasible binding");
  return binding;
}

std::optional<binding_solution> find_min_overlap_binding(
    const synthesis_input& input, int num_buses, const solver_options& opts,
    solve_stats* stats) {
  STX_REQUIRE(num_buses >= 1, "need at least one bus");
  if (lower_bound_buses(input) > num_buses) {
    if (stats != nullptr) *stats = {0, true, 0.0};
    return std::nullopt;
  }
  xbar_search search(input, num_buses, xbar_search::mode::optimize, opts,
                     /*seed=*/1);
  search.run();
  fill_stats(search, stats);
  if (!search.found()) {
    STX_REQUIRE(search.complete(),
                "binding search hit limits before any solution; raise "
                "solver_options");
    return std::nullopt;
  }
  binding_solution out;
  out.binding = search.best_binding();
  out.max_overlap = search.best_overlap();
  out.proven_optimal = search.complete();
  STX_ENSURE(input.binding_feasible(out.binding, num_buses),
             "solver produced an infeasible binding");
  STX_ENSURE(input.max_bus_overlap(out.binding, num_buses) ==
                 out.max_overlap,
             "objective bookkeeping diverged from recomputation");
  return out;
}

std::optional<std::vector<int>> find_random_feasible_binding(
    const synthesis_input& input, int num_buses, std::uint64_t seed,
    const solver_options& opts) {
  STX_REQUIRE(num_buses >= 1, "need at least one bus");
  if (lower_bound_buses(input) > num_buses) return std::nullopt;
  xbar_search search(input, num_buses, xbar_search::mode::random, opts,
                     seed);
  const bool answered = search.run();
  STX_REQUIRE(answered, "random binding search hit limits");
  if (!search.found()) return std::nullopt;
  return search.best_binding();
}

}  // namespace stx::xbar
