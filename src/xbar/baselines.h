// Baseline design approaches the paper compares against (Sec. 2, 7).
#pragma once

#include <cstdint>

#include "traffic/trace.h"
#include "xbar/synthesis.h"

namespace stx::xbar {

/// "Previous approaches" baseline (Figs. 4a/4b): design from average
/// communication flows only — a single analysis window spanning the whole
/// simulation and no overlap constraints. Captures aggregate bandwidth
/// but none of the local variation or temporal overlap.
crossbar_design design_average_traffic(const traffic::trace& t,
                                       int max_targets_per_bus = 0);

/// Peak/contention-free baseline (Ho & Pinkston style, discussed in
/// Sec. 2): any two streams that EVER overlap in the same cycle get
/// separate buses. Eliminates contention but over-sizes the crossbar.
crossbar_design design_peak_contention_free(const traffic::trace& t,
                                            cycle_t window_size);

/// Random-binding baseline (Sec. 7.3): the same bus count as `design`
/// but a random feasible binding (satisfying Eq. 3-9) instead of the
/// overlap-minimising one. Distinct seeds give distinct bindings.
crossbar_design rebind_randomly(const synthesis_input& input,
                                const crossbar_design& design,
                                std::uint64_t seed);

}  // namespace stx::xbar
