#include "xbar/milp_formulation.h"

#include <cmath>
#include <string>

#include "util/error.h"

namespace stx::xbar {

int xbar_milp::pair_index(int i, int j) const {
  STX_REQUIRE(i >= 0 && j >= 0 && i < num_targets && j < num_targets &&
                  i != j,
              "pair index out of range");
  if (i > j) std::swap(i, j);
  return i * num_targets - i * (i + 1) / 2 + (j - i - 1);
}

std::vector<int> xbar_milp::decode_binding(
    const std::vector<double>& solution) const {
  std::vector<int> binding(static_cast<std::size_t>(num_targets), -1);
  for (int i = 0; i < num_targets; ++i) {
    for (int k = 0; k < num_buses; ++k) {
      const double v = solution[static_cast<std::size_t>(
          x[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)])];
      if (v > 0.5) {
        STX_ENSURE(binding[static_cast<std::size_t>(i)] < 0,
                   "target bound to two buses in MILP solution");
        binding[static_cast<std::size_t>(i)] = k;
      }
    }
    STX_ENSURE(binding[static_cast<std::size_t>(i)] >= 0,
               "target unbound in MILP solution");
  }
  return binding;
}

namespace {

/// Shared construction of Eq. 3-9; the binding variant adds maxov rows.
/// Without the objective the sharing variables sb/s exist ONLY to let
/// Eq. 7 forbid conflicting pairs from sharing — which the compact form
/// states directly as x_i_k + x_j_k <= 1 per conflicting pair per bus,
/// dropping all T(T-1)/2 * (B+1) sharing variables and their Eq. 5/6
/// linearisation rows. The two feasibility models have identical integer
/// solution sets; the compact rows are also exactly the 2-variable shape
/// the branch & bound's clique-cut separator feeds on.
xbar_milp build_common(const synthesis_input& input, int num_buses,
                       bool with_objective) {
  STX_REQUIRE(num_buses >= 1, "need at least one bus");
  xbar_milp out;
  out.num_targets = input.num_targets();
  out.num_buses = num_buses;

  const int T = out.num_targets;
  const int B = num_buses;
  auto& m = out.model;

  // Definition 3: binding variables x[i][k].
  out.x.assign(static_cast<std::size_t>(T), {});
  for (int i = 0; i < T; ++i) {
    for (int k = 0; k < B; ++k) {
      out.x[static_cast<std::size_t>(i)].push_back(m.add_binary(
          0.0, "x_" + std::to_string(i) + "_" + std::to_string(k)));
    }
  }

  // Definition 4: sharing variables sb[(i,j)][k] and s[(i,j)], i < j.
  // Only the objective needs them (compact feasibility: see above).
  if (with_objective) {
    const int pairs = T * (T - 1) / 2;
    out.sb.assign(static_cast<std::size_t>(pairs), {});
    out.s.assign(static_cast<std::size_t>(pairs), -1);
    for (int i = 0; i < T; ++i) {
      for (int j = i + 1; j < T; ++j) {
        const auto p = static_cast<std::size_t>(out.pair_index(i, j));
        for (int k = 0; k < B; ++k) {
          out.sb[p].push_back(m.add_binary(
              0.0, "sb_" + std::to_string(i) + "_" + std::to_string(j) +
                       "_" + std::to_string(k)));
        }
        out.s[p] = m.add_binary(
            0.0, "s_" + std::to_string(i) + "_" + std::to_string(j));
      }
    }
  }

  // Eq. 3: each target on exactly one bus.
  for (int i = 0; i < T; ++i) {
    std::vector<lp::term> terms;
    for (int k = 0; k < B; ++k) {
      terms.push_back({out.x[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(k)],
                       1.0});
    }
    m.add_row(terms, lp::relation::equal, 1.0, "assign_" + std::to_string(i));
  }

  // Eq. 4: window bandwidth per bus per window.
  for (int k = 0; k < B; ++k) {
    for (int w = 0; w < input.num_windows(); ++w) {
      std::vector<lp::term> terms;
      for (int i = 0; i < T; ++i) {
        const auto c = static_cast<double>(input.comm(i, w));
        if (c > 0.0) {
          terms.push_back({out.x[static_cast<std::size_t>(i)]
                                [static_cast<std::size_t>(k)],
                           c});
        }
      }
      if (terms.empty()) continue;
      m.add_row(terms, lp::relation::less_equal,
                static_cast<double>(input.capacity(w)),
                "bw_" + std::to_string(k) + "_" + std::to_string(w));
    }
  }

  if (with_objective) {
    // Eq. 5: linearised sb = x_i * x_j, and Eq. 6: s = sum_k sb.
    for (int i = 0; i < T; ++i) {
      for (int j = i + 1; j < T; ++j) {
        const auto p = static_cast<std::size_t>(out.pair_index(i, j));
        std::vector<lp::term> sum_terms;
        for (int k = 0; k < B; ++k) {
          const int xi = out.x[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(k)];
          const int xj = out.x[static_cast<std::size_t>(j)]
                              [static_cast<std::size_t>(k)];
          const int sbv = out.sb[p][static_cast<std::size_t>(k)];
          // x_i + x_j - 1 <= sb
          m.add_row({{xi, 1.0}, {xj, 1.0}, {sbv, -1.0}},
                    lp::relation::less_equal, 1.0);
          // sb <= 0.5 x_i + 0.5 x_j
          m.add_row({{sbv, 1.0}, {xi, -0.5}, {xj, -0.5}},
                    lp::relation::less_equal, 0.0);
          sum_terms.push_back({sbv, 1.0});
        }
        sum_terms.push_back({out.s[p], -1.0});
        m.add_row(sum_terms, lp::relation::equal, 0.0);  // Eq. 6

        // Eq. 7: conflicting pairs must not share (c_ij * s_ij = 0).
        if (input.conflict(i, j)) {
          m.add_row({{out.s[p], 1.0}}, lp::relation::equal, 0.0);
        }
      }
    }
  } else {
    // Compact Eq. 7: conflicting pairs may not land on the same bus.
    for (int i = 0; i < T; ++i) {
      for (int j = i + 1; j < T; ++j) {
        if (!input.conflict(i, j)) continue;
        for (int k = 0; k < B; ++k) {
          m.add_row({{out.x[static_cast<std::size_t>(i)]
                           [static_cast<std::size_t>(k)],
                      1.0},
                     {out.x[static_cast<std::size_t>(j)]
                           [static_cast<std::size_t>(k)],
                      1.0}},
                    lp::relation::less_equal, 1.0,
                    "conflict_" + std::to_string(i) + "_" +
                        std::to_string(j) + "_" + std::to_string(k));
        }
      }
    }
  }

  // Eq. 8: at most maxtb targets per bus.
  if (input.params().max_targets_per_bus > 0) {
    for (int k = 0; k < B; ++k) {
      std::vector<lp::term> terms;
      for (int i = 0; i < T; ++i) {
        terms.push_back({out.x[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(k)],
                         1.0});
      }
      m.add_row(terms, lp::relation::less_equal,
                static_cast<double>(input.params().max_targets_per_bus),
                "maxtb_" + std::to_string(k));
    }
  }

  // Bus-index symmetry: the buses of Eq. 3-9 are fully interchangeable
  // (permuting k permutes x and sb columns together and fixes the
  // objective), so declare the x columns as a symmetry group. Presolve
  // turns the declaration into lexicographic bus-ordering rows — the
  // canonical representative (buses sorted by least bound target) also
  // satisfies the prefix fixing below, so the two reductions compose.
  if (B > 1) {
    std::vector<std::vector<int>> blocks(static_cast<std::size_t>(B));
    for (int k = 0; k < B; ++k) {
      auto& block = blocks[static_cast<std::size_t>(k)];
      block.reserve(static_cast<std::size_t>(T));
      for (int i = 0; i < T; ++i) {
        block.push_back(out.x[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(k)]);
      }
    }
    m.add_symmetry_group(std::move(blocks));
  }

  // Symmetry breaking over interchangeable buses: bus k may only be used
  // when bus k-1 is (monotone bus-usage). This does not change
  // feasibility or the optimal objective, only removes permuted copies
  // (CPLEX applies comparable symmetry reductions internally).
  if (B > 1 && T >= B) {
    // Represent "bus k used" through the first target's prefix structure:
    // target 0 on bus 0; target i only on buses <= i.
    for (int i = 0; i < std::min(T, B); ++i) {
      for (int k = i + 1; k < B; ++k) {
        m.set_bounds(out.x[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(k)],
                     0.0, 0.0);
      }
    }
  }

  if (with_objective) {
    out.maxov = m.add_continuous(0.0, lp::infinity, 1.0, "maxov");
    for (int k = 0; k < B; ++k) {
      std::vector<lp::term> terms;
      for (int i = 0; i < T; ++i) {
        for (int j = i + 1; j < T; ++j) {
          const auto omv = static_cast<double>(input.om(i, j));
          if (omv <= 0.0) continue;
          terms.push_back(
              {out.sb[static_cast<std::size_t>(out.pair_index(i, j))]
                     [static_cast<std::size_t>(k)],
               omv});
        }
      }
      if (terms.empty()) continue;
      terms.push_back({out.maxov, -1.0});
      m.add_row(terms, lp::relation::less_equal, 0.0,
                "maxov_" + std::to_string(k));
    }
  }
  return out;
}

}  // namespace

xbar_milp build_feasibility_milp(const synthesis_input& input,
                                 int num_buses) {
  return build_common(input, num_buses, /*with_objective=*/false);
}

xbar_milp build_binding_milp(const synthesis_input& input, int num_buses) {
  return build_common(input, num_buses, /*with_objective=*/true);
}

std::optional<std::vector<int>> solve_feasibility_milp(
    const synthesis_input& input, int num_buses,
    const milp::bb_options& opts) {
  auto fm = build_feasibility_milp(input, num_buses);
  milp::bb_options o = opts;
  o.feasibility_only = true;  // MILP (10): "obj: Feasibility Analysis"
  const auto res = milp::solve_branch_bound(fm.model, o);
  if (res.status == milp::milp_status::infeasible) return std::nullopt;
  STX_REQUIRE(res.status == milp::milp_status::optimal ||
                  res.status == milp::milp_status::feasible,
              "feasibility MILP hit solver limits; raise bb_options");
  auto binding = fm.decode_binding(res.x);
  STX_ENSURE(input.binding_feasible(binding, num_buses),
             "MILP returned an infeasible binding");
  return binding;
}

std::optional<milp_binding_result> solve_binding_milp(
    const synthesis_input& input, int num_buses,
    const milp::bb_options& opts) {
  auto bm = build_binding_milp(input, num_buses);
  const auto res = milp::solve_branch_bound(bm.model, opts);
  if (res.status == milp::milp_status::infeasible) return std::nullopt;
  STX_REQUIRE(res.status == milp::milp_status::optimal,
              "binding MILP not solved to optimality; raise bb_options");
  milp_binding_result out;
  out.binding = bm.decode_binding(res.x);
  out.max_overlap = input.max_bus_overlap(out.binding, num_buses);
  STX_ENSURE(input.binding_feasible(out.binding, num_buses),
             "binding MILP returned an infeasible binding");
  return out;
}

}  // namespace stx::xbar
