// Specialised exact solver for the crossbar binding model.
//
// Solves the same model as the paper's MILPs (Eq. 3-9 feasibility and the
// Eq. 11 min-max-overlap binding) with a dedicated branch & bound:
// targets are assigned to buses hardest-first, with window-bandwidth /
// conflict / cardinality propagation and bus-symmetry breaking. Exact —
// property tests cross-check it against the generic MILP path — but
// orders of magnitude faster, which is what the benches use.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "xbar/problem.h"

namespace stx::xbar {

/// Search limits, honoured by BOTH engines: the specialised branch &
/// bound directly, and the generic MILP path via milp::bb_options. The
/// defaults are far above what the paper-scale instances (|T| <= 32)
/// need; verification harnesses shrink them to bound a cross-check.
struct solver_options {
  std::int64_t max_nodes = 20'000'000;
  double time_limit_sec = 60.0;
  /// Generic-MILP path: worker threads for the wave-parallel branch &
  /// bound (milp::bb_options::threads; results are bit-identical across
  /// values, only wall time changes).
  int threads = 1;
  /// Generic-MILP path: separate cover/clique cuts at the root.
  bool cuts = true;
  /// Race the specialised solver against the generic MILP on every
  /// feasibility probe and take the first DEFINITIVE answer. Both
  /// engines are exact, so the sat/unsat verdict — and with it the bus
  /// count — stays deterministic; which engine wins is timing-dependent,
  /// so probe node telemetry is zeroed under portfolio mode and win
  /// attribution goes to the obs wall section.
  bool portfolio = false;
  /// Cooperative cancellation: when non-null and it reads true, both
  /// engines stop at their next budget check as if the time limit fired
  /// (the portfolio uses this to cancel the losing engine). The caller
  /// keeps ownership.
  const std::atomic<bool>* cancel = nullptr;
};

/// Search telemetry.
struct solve_stats {
  std::int64_t nodes = 0;
  bool complete = true;  ///< search ran to proof (not stopped by limits)
  double seconds = 0.0;
};

/// Feasibility (MILP 10 equivalent): find any binding of targets onto
/// `num_buses` buses satisfying Eq. 3-9, or prove none exists.
/// Returns nullopt on proven infeasibility. Throws if limits were hit
/// before an answer (stats->complete false tells the caller why).
std::optional<std::vector<int>> find_feasible_binding(
    const synthesis_input& input, int num_buses,
    const solver_options& opts = {}, solve_stats* stats = nullptr);

/// Optimal binding (MILP 11 equivalent): minimize the maximum per-bus
/// summed pairwise overlap subject to Eq. 3-9.
struct binding_solution {
  std::vector<int> binding;
  cycle_t max_overlap = 0;
  bool proven_optimal = true;
};
std::optional<binding_solution> find_min_overlap_binding(
    const synthesis_input& input, int num_buses,
    const solver_options& opts = {}, solve_stats* stats = nullptr);

/// A *random* feasible binding (Sec. 7.3's random-binding baseline):
/// randomised DFS that still honours Eq. 3-9. Distinct seeds give
/// different bindings. Returns nullopt on proven infeasibility.
std::optional<std::vector<int>> find_random_feasible_binding(
    const synthesis_input& input, int num_buses, std::uint64_t seed,
    const solver_options& opts = {});

/// Cheap lower bound on the feasible bus count, used to seed the binary
/// search and to fail infeasible probes without search:
///  * bandwidth: ceil(max_m sum_i comm[i][m] / WS)
///  * cardinality: ceil(T / maxtb)
///  * conflicts: a greedily grown clique in the conflict graph
int lower_bound_buses(const synthesis_input& input);

}  // namespace stx::xbar
