// Paper-faithful MILP formulation (Eq. 3-9 feasibility, Eq. 11 binding).
#pragma once

#include <optional>
#include <vector>

#include "milp/branch_bound.h"
#include "milp/model.h"
#include "xbar/problem.h"

namespace stx::xbar {

/// A built MILP plus the variable index maps needed to decode solutions.
struct xbar_milp {
  milp::model model;
  int num_targets = 0;
  int num_buses = 0;
  /// x[i][k] variable index (Definition 3).
  std::vector<std::vector<int>> x;
  /// sb[(i,j)][k] variable index for unordered pairs i<j (Definition 4).
  /// Empty in the feasibility model: without the Eq. 11 objective the
  /// sharing variables are replaced by direct per-bus conflict rows.
  std::vector<std::vector<int>> sb;
  /// s[(i,j)] variable index (empty in the feasibility model).
  std::vector<int> s;
  /// maxov variable (only in the binding model; -1 otherwise).
  int maxov = -1;

  /// Flattened unordered pair index for i < j.
  int pair_index(int i, int j) const;

  /// Reads the binding vector out of a solved variable assignment.
  std::vector<int> decode_binding(const std::vector<double>& solution) const;
};

/// Builds the feasibility MILP (10): Eq. 3-9 with no objective, in the
/// COMPACT form — no sb/s sharing variables; Eq. 7 becomes direct
/// x_i_k + x_j_k <= 1 conflict rows. Identical integer solution set to
/// the paper-literal formulation at a fraction of the size (T*B binaries
/// instead of O(T^2 * B)).
xbar_milp build_feasibility_milp(const synthesis_input& input,
                                 int num_buses);

/// Builds the binding MILP (11): minimize maxov subject to per-bus
/// overlap rows and Eq. 3-9. The per-bus overlap sums unordered pairs
/// (see DESIGN.md interpretation notes).
xbar_milp build_binding_milp(const synthesis_input& input, int num_buses);

/// Convenience: solve the feasibility MILP; returns the binding or
/// nullopt when proven infeasible. Throws if the solver hits its limits
/// without an answer (callers pick limits generously for the small
/// instances this path is used on).
std::optional<std::vector<int>> solve_feasibility_milp(
    const synthesis_input& input, int num_buses,
    const milp::bb_options& opts = {});

/// Convenience: solve the binding MILP to optimality; returns binding +
/// achieved maxov, or nullopt when infeasible.
struct milp_binding_result {
  std::vector<int> binding;
  cycle_t max_overlap = 0;
};
std::optional<milp_binding_result> solve_binding_milp(
    const synthesis_input& input, int num_buses,
    const milp::bb_options& opts = {});

}  // namespace stx::xbar
