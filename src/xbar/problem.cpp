#include "xbar/problem.h"

#include <cmath>
#include <sstream>

#include "util/error.h"

namespace stx::xbar {

synthesis_input::synthesis_input(const traffic::window_analysis& wa,
                                 const design_params& params)
    : num_targets_(wa.num_targets()),
      num_windows_(wa.num_windows()),
      window_size_(wa.window_size()),
      params_(params) {
  STX_REQUIRE(num_targets_ > 0, "synthesis needs at least one target");
  STX_REQUIRE(params.window_size > 0, "window size must be positive");
  STX_REQUIRE(params.overlap_threshold >= 0.0,
              "overlap threshold must be non-negative");

  const auto n = static_cast<std::size_t>(num_targets_);
  capacity_.assign(static_cast<std::size_t>(num_windows_), window_size_);
  comm_.assign(n, std::vector<cycle_t>(
                      static_cast<std::size_t>(num_windows_), 0));
  om_.assign(n, std::vector<cycle_t>(n, 0));
  conflict_.assign(n, std::vector<bool>(n, false));

  for (int i = 0; i < num_targets_; ++i) {
    for (int m = 0; m < num_windows_; ++m) {
      comm_[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)] =
          wa.comm(i, m);
    }
  }

  const auto threshold = static_cast<cycle_t>(std::llround(
      params.overlap_threshold * static_cast<double>(window_size_)));
  for (int i = 0; i < num_targets_; ++i) {
    for (int j = i + 1; j < num_targets_; ++j) {
      om_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          wa.total_overlap(i, j);
      om_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          om_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];

      bool c = false;
      if (params.use_overlap_conflicts &&
          wa.max_window_overlap(i, j) > threshold) {
        c = true;
      }
      if (params.separate_critical && wa.critical_overlap(i, j) > 0) {
        c = true;
      }
      conflict_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = c;
      conflict_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = c;
    }
  }
}

synthesis_input::synthesis_input(std::vector<std::vector<cycle_t>> comm,
                                 std::vector<std::vector<cycle_t>> om,
                                 std::vector<std::vector<bool>> conflict,
                                 cycle_t window_size,
                                 const design_params& params)
    : num_targets_(static_cast<int>(comm.size())),
      window_size_(window_size),
      params_(params),
      comm_(std::move(comm)),
      om_(std::move(om)),
      conflict_(std::move(conflict)) {
  STX_REQUIRE(num_targets_ > 0, "synthesis needs at least one target");
  STX_REQUIRE(window_size_ > 0, "window size must be positive");
  num_windows_ = static_cast<int>(comm_.front().size());
  STX_REQUIRE(num_windows_ > 0, "need at least one window");
  capacity_.assign(static_cast<std::size_t>(num_windows_), window_size_);
  const auto n = static_cast<std::size_t>(num_targets_);
  STX_REQUIRE(om_.size() == n && conflict_.size() == n,
              "matrix dimensions must match target count");
  for (int i = 0; i < num_targets_; ++i) {
    const auto si = static_cast<std::size_t>(i);
    STX_REQUIRE(comm_[si].size() == static_cast<std::size_t>(num_windows_),
                "ragged comm matrix");
    STX_REQUIRE(om_[si].size() == n && conflict_[si].size() == n,
                "ragged om/conflict matrix");
    STX_REQUIRE(om_[si][si] == 0, "om diagonal must be zero");
    STX_REQUIRE(!conflict_[si][si], "conflict diagonal must be false");
    for (int m = 0; m < num_windows_; ++m) {
      STX_REQUIRE(comm_[si][static_cast<std::size_t>(m)] >= 0 &&
                      comm_[si][static_cast<std::size_t>(m)] <= window_size_,
                  "comm must lie in [0, window_size]");
    }
    for (int j = 0; j < num_targets_; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      STX_REQUIRE(om_[si][sj] == om_[sj][si], "om must be symmetric");
      STX_REQUIRE(conflict_[si][sj] == conflict_[sj][si],
                  "conflict must be symmetric");
      STX_REQUIRE(om_[si][sj] >= 0, "om must be non-negative");
    }
  }
}

synthesis_input::synthesis_input(const traffic::variable_window_analysis& vwa,
                                 const design_params& params)
    : num_targets_(vwa.num_targets()),
      num_windows_(vwa.num_windows()),
      window_size_(vwa.partition().max_size()),
      params_(params) {
  STX_REQUIRE(num_targets_ > 0, "synthesis needs at least one target");
  STX_REQUIRE(params.overlap_threshold >= 0.0,
              "overlap threshold must be non-negative");

  const auto n = static_cast<std::size_t>(num_targets_);
  capacity_.resize(static_cast<std::size_t>(num_windows_));
  for (int m = 0; m < num_windows_; ++m) {
    capacity_[static_cast<std::size_t>(m)] = vwa.partition().size(m);
  }
  comm_.assign(n, std::vector<cycle_t>(
                      static_cast<std::size_t>(num_windows_), 0));
  om_.assign(n, std::vector<cycle_t>(n, 0));
  conflict_.assign(n, std::vector<bool>(n, false));

  for (int i = 0; i < num_targets_; ++i) {
    for (int m = 0; m < num_windows_; ++m) {
      comm_[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)] =
          vwa.comm(i, m);
    }
  }
  for (int i = 0; i < num_targets_; ++i) {
    for (int j = i + 1; j < num_targets_; ++j) {
      om_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          vwa.total_overlap(i, j);
      om_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          om_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      bool c = false;
      // The threshold is a fraction of each window's own size here.
      if (params.use_overlap_conflicts &&
          vwa.max_window_overlap_fraction(i, j) > params.overlap_threshold) {
        c = true;
      }
      if (params.separate_critical && vwa.critical_overlap(i, j) > 0) {
        c = true;
      }
      conflict_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = c;
      conflict_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = c;
    }
  }
}

int synthesis_input::num_conflicts() const {
  int acc = 0;
  for (int i = 0; i < num_targets_; ++i) {
    for (int j = i + 1; j < num_targets_; ++j) {
      acc += conflict(i, j) ? 1 : 0;
    }
  }
  return acc;
}

bool synthesis_input::binding_feasible(const std::vector<int>& binding,
                                       int num_buses) const {
  if (static_cast<int>(binding.size()) != num_targets_) return false;
  if (num_buses < 1) return false;
  for (int b : binding) {
    if (b < 0 || b >= num_buses) return false;  // Eq. 3
  }
  // Eq. 8: cardinality per bus.
  if (params_.max_targets_per_bus > 0) {
    std::vector<int> count(static_cast<std::size_t>(num_buses), 0);
    for (int b : binding) ++count[static_cast<std::size_t>(b)];
    for (int c : count) {
      if (c > params_.max_targets_per_bus) return false;
    }
  }
  // Eq. 7: conflicts.
  for (int i = 0; i < num_targets_; ++i) {
    for (int j = i + 1; j < num_targets_; ++j) {
      if (conflict(i, j) &&
          binding[static_cast<std::size_t>(i)] ==
              binding[static_cast<std::size_t>(j)]) {
        return false;
      }
    }
  }
  // Eq. 4: per-window bandwidth on every bus (against the window's own
  // capacity, which varies under variable partitions).
  for (int m = 0; m < num_windows_; ++m) {
    std::vector<cycle_t> load(static_cast<std::size_t>(num_buses), 0);
    for (int i = 0; i < num_targets_; ++i) {
      load[static_cast<std::size_t>(binding[static_cast<std::size_t>(i)])] +=
          comm(i, m);
    }
    for (cycle_t l : load) {
      if (l > capacity(m)) return false;
    }
  }
  return true;
}

cycle_t synthesis_input::max_bus_overlap(const std::vector<int>& binding,
                                         int num_buses) const {
  STX_REQUIRE(static_cast<int>(binding.size()) == num_targets_,
              "binding size mismatch");
  std::vector<cycle_t> ov(static_cast<std::size_t>(num_buses), 0);
  for (int i = 0; i < num_targets_; ++i) {
    for (int j = i + 1; j < num_targets_; ++j) {
      if (binding[static_cast<std::size_t>(i)] !=
          binding[static_cast<std::size_t>(j)]) {
        continue;
      }
      ov[static_cast<std::size_t>(binding[static_cast<std::size_t>(i)])] +=
          om(i, j);
    }
  }
  cycle_t best = 0;
  for (cycle_t v : ov) best = std::max(best, v);
  return best;
}

std::string synthesis_input::to_string() const {
  std::ostringstream out;
  out << "synthesis_input{targets=" << num_targets_
      << ", windows=" << num_windows_ << ", WS=" << window_size_
      << ", conflicts=" << num_conflicts() << "}";
  return out.str();
}

}  // namespace stx::xbar
