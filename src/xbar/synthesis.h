// Crossbar synthesis: minimum configuration search + optimal binding
// (paper Section 6, "Crossbar Design Algorithm").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/crossbar.h"
#include "traffic/trace.h"
#include "xbar/bb_solver.h"
#include "xbar/problem.h"

namespace stx::xbar {

/// Which exact engine solves the two MILPs.
enum class solver_kind {
  /// Specialised branch & bound (default: fast, exact).
  specialized,
  /// Paper-faithful MILP through the generic simplex branch & bound
  /// (CPLEX stand-in). Exact but slower; used for cross-checks and the
  /// solver ablation bench.
  generic_milp,
};

/// Options for a synthesis run.
struct synthesis_options {
  design_params params;
  solver_kind solver = solver_kind::specialized;
  solver_options limits;
  /// Skip the Eq. 11 binding optimisation and keep the feasibility
  /// binding (the random/first binding ablation uses this).
  bool optimize_binding = true;
};

/// A synthesised crossbar for one direction.
struct crossbar_design {
  int num_targets = 0;
  int num_buses = 0;
  std::vector<int> binding;       ///< target -> bus
  cycle_t max_overlap = 0;        ///< achieved Eq. 11 objective
  bool binding_optimal = true;    ///< proven optimal by the solver
  design_params params;
  /// Conflicting target pairs in the pre-processed input (Eq. 2); kept so
  /// reports and generated artifacts can summarise the conflict matrix.
  int num_conflicts = 0;

  // Search telemetry.
  std::int64_t feasibility_nodes = 0;
  std::int64_t binding_nodes = 0;
  int probes = 0;                 ///< feasibility checks in binary search

  bool operator==(const crossbar_design&) const = default;

  /// Ratio of a full crossbar's bus count to this design's (Table 2).
  double savings_vs_full() const {
    return static_cast<double>(num_targets) /
           static_cast<double>(num_buses);
  }

  /// Converts to a simulator config for validation (phase 4).
  sim::crossbar_config to_config(
      sim::arbitration policy = sim::arbitration::round_robin,
      cycle_t transfer_overhead = 2) const;

  std::string to_string() const;
};

/// Finds the minimum bus count for which the Eq. 3-9 model is feasible,
/// by binary search over [lower_bound_buses(input), |T|]. Feasibility is
/// monotone in the bus count (a k-bus solution extends to k+1 by leaving
/// the new bus empty), so binary search is exact; a property test checks
/// this against a linear scan.
int min_feasible_buses(const synthesis_input& input,
                       const synthesis_options& opts, int* probes = nullptr,
                       std::int64_t* probe_nodes = nullptr);

/// Full synthesis from a pre-processed input: size the crossbar, then
/// bind targets minimising the maximum per-bus overlap.
crossbar_design synthesize(const synthesis_input& input,
                           const synthesis_options& opts);

/// Convenience: window analysis + pre-processing + synthesis straight
/// from a functional traffic trace (phases 2-3 of Fig. 3).
crossbar_design synthesize_from_trace(const traffic::trace& t,
                                      const synthesis_options& opts);

/// Phases 2-3 model construction without the solve: window analysis
/// (uniform, or burst-adaptive when params.burst_window > 0) followed by
/// pre-processing, exactly as synthesize_from_trace performs it. Exposed
/// so verification harnesses (src/testkit) can rebuild the model a design
/// was solved against and re-check feasibility and the Eq. 11 objective
/// independently of the solver that produced the design.
synthesis_input input_from_trace(const traffic::trace& t,
                                 const design_params& params);

}  // namespace stx::xbar
