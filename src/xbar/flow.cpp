#include "xbar/flow.h"

#include <optional>

#include "gen/registry.h"
#include "obs/obs.h"
#include "util/error.h"

namespace stx::xbar {

namespace {

/// Busy-cycle totals per (sender, receiver) link of one direction's trace.
std::vector<std::vector<traffic::cycle_t>> link_totals(
    const traffic::trace& t) {
  std::vector<std::vector<traffic::cycle_t>> out(
      static_cast<std::size_t>(t.num_initiators()),
      std::vector<traffic::cycle_t>(static_cast<std::size_t>(t.num_targets()),
                                    0));
  for (const auto& e : t.events()) {
    out[static_cast<std::size_t>(e.initiator)]
       [static_cast<std::size_t>(e.target)] += e.end - e.begin;
  }
  return out;
}

/// The session harvest, reshaped into the flow's metric record (the
/// session is the single source of how a run is measured; this only
/// copies fields).
validation_metrics to_validation(const sim::run_metrics& m) {
  validation_metrics out;
  out.avg_latency = m.avg_latency;
  out.max_latency = m.max_latency;
  out.p99_latency = m.p99_latency;
  out.avg_critical = m.avg_critical;
  out.max_critical = m.max_critical;
  out.packets = m.packets;
  out.transactions = m.transactions;
  out.iterations = m.iterations;
  out.total_buses = m.total_buses;
  return out;
}

sim::system_config base_system_config(const flow_options& opts,
                                      bool record_traces) {
  sim::system_config cfg;
  cfg.record_traces = record_traces;
  cfg.keep_latency_samples = true;
  cfg.seed = opts.seed;
  cfg.request.policy = opts.policy;
  cfg.request.transfer_overhead = opts.transfer_overhead;
  cfg.response.policy = opts.policy;
  cfg.response.transfer_overhead = opts.transfer_overhead;
  return cfg;
}

}  // namespace

design_params effective_synthesis_params(const flow_options& opts,
                                         bool request_direction) {
  auto params = opts.synth.params;
  const auto override_win = request_direction ? opts.request_window_override
                                              : opts.response_window_override;
  if (override_win > 0) params.window_size = override_win;
  return params;
}

collected_traces collect_traces(const workloads::app_spec& app,
                                const flow_options& opts) {
  obs::span sp("flow.collect", {{"app", app.name}});
  auto session = workloads::make_full_crossbar_session(
      app, base_system_config(opts, /*record_traces=*/true));
  session.run(opts.horizon);
  return {session.request_trace(), session.response_trace()};
}

validation_metrics validate_configuration(const workloads::app_spec& app,
                                          const sim::crossbar_config& req,
                                          const sim::crossbar_config& resp,
                                          const flow_options& opts) {
  auto session = workloads::make_session(
      app, req, resp, base_system_config(opts, /*record_traces=*/false));
  session.run(opts.horizon);
  return to_validation(session.metrics());
}

std::vector<validation_metrics> validate_configurations(
    const workloads::app_spec& app, const std::vector<validation_job>& jobs) {
  std::vector<validation_metrics> out;
  if (jobs.empty()) return out;
  obs::span sp("flow.validate_batch",
               {{"app", app.name},
                {"instances", static_cast<std::int64_t>(jobs.size())}});
  auto batch = workloads::make_batch(app);
  const auto horizon = jobs.front().opts.horizon;
  for (const auto& job : jobs) {
    STX_REQUIRE(job.opts.horizon == horizon,
                "batched validation jobs must share one horizon");
    batch.add_instance(workloads::make_system_config(
        app, job.request, job.response,
        base_system_config(job.opts, /*record_traces=*/false)));
  }
  batch.run(horizon);
  out.reserve(jobs.size());
  for (int b = 0; b < batch.size(); ++b) {
    out.push_back(to_validation(batch.metrics(b)));
  }
  return out;
}

validation_metrics validate_full_crossbars(const workloads::app_spec& app,
                                           const flow_options& opts) {
  auto full_req = sim::crossbar_config::full(app.num_targets);
  full_req.policy = opts.policy;
  full_req.transfer_overhead = opts.transfer_overhead;
  auto full_resp = sim::crossbar_config::full(app.num_initiators);
  full_resp.policy = opts.policy;
  full_resp.transfer_overhead = opts.transfer_overhead;
  return validate_configuration(app, full_req, full_resp, opts);
}

flow_report synthesize_design(const workloads::app_spec& app,
                              const collected_traces& traces,
                              const flow_options& opts) {
  app.validate();
  flow_report report;
  report.app_name = app.name;
  report.num_initiators = app.num_initiators;
  report.num_targets = app.num_targets;
  report.target_names = app.target_names;
  for (int t = static_cast<int>(report.target_names.size());
       t < app.num_targets; ++t) {
    report.target_names.push_back("tgt" + std::to_string(t));
  }
  report.request_traffic = link_totals(traces.request);
  report.response_traffic = link_totals(traces.response);

  // ---- Phases 2+3: window analysis, pre-processing, synthesis — run
  // independently per direction, as the paper does.
  synthesis_options req_opts = opts.synth;
  req_opts.params = effective_synthesis_params(opts, /*request=*/true);
  synthesis_options resp_opts = opts.synth;
  resp_opts.params = effective_synthesis_params(opts, /*request=*/false);
  std::optional<synthesis_input> req_input;
  std::optional<synthesis_input> resp_input;
  {
    obs::span sp("flow.analyze", {{"app", app.name}});
    req_input = input_from_trace(traces.request, req_opts.params);
    resp_input = input_from_trace(traces.response, resp_opts.params);
  }
  {
    obs::span sp("flow.synthesize", {{"app", app.name}});
    report.request_design = synthesize(*req_input, req_opts);
    report.response_design = synthesize(*resp_input, resp_opts);
  }

  report.full_buses = app.total_cores();
  report.designed_buses =
      report.request_design.num_buses + report.response_design.num_buses;
  return report;
}

void validate_design(const workloads::app_spec& app, const flow_options& opts,
                     const std::optional<validation_metrics>& full,
                     flow_report& report) {
  // ---- Phase 4: validation simulations.
  obs::span sp("flow.validate", {{"app", app.name}});
  const auto req_cfg =
      report.request_design.to_config(opts.policy, opts.transfer_overhead);
  const auto resp_cfg =
      report.response_design.to_config(opts.policy, opts.transfer_overhead);
  report.designed = validate_configuration(app, req_cfg, resp_cfg, opts);
  report.full = full.has_value() ? *full : validate_full_crossbars(app, opts);
}

flow_report design_from_traces(const workloads::app_spec& app,
                               const collected_traces& traces,
                               const flow_options& opts,
                               const flow_stage_inputs& stages) {
  auto report = synthesize_design(app, traces, opts);
  if (stages.mode == validation_mode::validate) {
    validate_design(app, opts, stages.full, report);
  }
  return report;
}

flow_report run_design_flow(const workloads::app_spec& app,
                            const flow_options& opts) {
  app.validate();
  // ---- Phase 1: cycle-accurate simulation with full crossbars.
  const auto traces = collect_traces(app, opts);
  return design_from_traces(app, traces, opts);
}

std::vector<gen::artifact> generate_artifacts(
    const flow_report& report, const gen::generate_options& opts) {
  obs::span sp("flow.generate", {{"app", report.app_name}});
  auto artifacts = gen::registry::instance().generate(report, opts);
  obs::add_counter("gen.artifacts",
                   static_cast<std::int64_t>(artifacts.size()));
  return artifacts;
}

}  // namespace stx::xbar
