#include "sim/event_queue.h"

#include <algorithm>
#include <functional>

#include "util/error.h"

namespace stx::sim {

void event_queue::push(const event_key& k) {
  heap_.push_back(k);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<event_key>{});
  ++pushed_;
}

const event_key& event_queue::top() const {
  STX_REQUIRE(!heap_.empty(), "event_queue::top on empty queue");
  return heap_.front();
}

event_key event_queue::pop() {
  STX_REQUIRE(!heap_.empty(), "event_queue::pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<event_key>{});
  const event_key k = heap_.back();
  heap_.pop_back();
  return k;
}

}  // namespace stx::sim
