#include "sim/engine.h"

#include <algorithm>

#include "util/error.h"

namespace stx::sim {

engine::engine(mpsoc_system& sys)
    : sys_(sys),
      start_(sys.now()),
      num_cores_(static_cast<int>(sys.cores_.size())),
      num_request_buses_(sys.request_xbar_.num_buses()),
      num_targets_(static_cast<int>(sys.targets_.size())),
      num_response_buses_(sys.response_xbar_.num_buses()) {
  last_stepped_.assign(
      static_cast<std::size_t>(num_cores_ + num_request_buses_ +
                               num_targets_ + num_response_buses_),
      start_ - 1);
}

int engine::gid(int phase, int comp) const {
  switch (phase) {
    case phase_core: return comp;
    case phase_request_bus: return num_cores_ + comp;
    case phase_target: return num_cores_ + num_request_buses_ + comp;
    case phase_response_bus:
      return num_cores_ + num_request_buses_ + num_targets_ + comp;
  }
  throw internal_error("unknown engine phase");
}

void engine::schedule(int phase, int comp, cycle_t cycle) {
  if (cycle == no_wake) return;
  event_key k{std::max(cycle, start_), phase, comp};
  if (processing_ && k <= current_) k.cycle = current_.cycle + 1;
  // Events at or past the horizon are dropped: seed() rebuilds every
  // still-needed wake from component state when the next run() starts.
  if (k.cycle >= horizon_) return;
  queue_.push(k);
}

void engine::seed() {
  // Wake every component once at the start cycle — one polling-equivalent
  // sweep. Each processed wake re-arms the component from its own state,
  // so this is the only place wakes are derived without observing an
  // event, which keeps segmented runs identical to one long run.
  for (int i = 0; i < num_cores_; ++i) schedule(phase_core, i, start_);
  for (int k = 0; k < num_request_buses_; ++k) {
    schedule(phase_request_bus, k, start_);
  }
  for (int t = 0; t < num_targets_; ++t) schedule(phase_target, t, start_);
  for (int k = 0; k < num_response_buses_; ++k) {
    schedule(phase_response_bus, k, start_);
  }
}

void engine::wake_all_cores() {
  for (int i = 0; i < num_cores_; ++i) {
    schedule(phase_core, i, current_.cycle);
  }
}

void engine::run(cycle_t horizon) {
  STX_REQUIRE(!processing_ && horizon_ == 0, "engine::run is single-use");
  horizon_ = horizon;
  if (horizon <= start_) return;
  seed();

  const send_fn send_request = [&](const packet& p) {
    sys_.request_xbar_.enqueue(p);
    schedule(phase_request_bus, sys_.request_xbar_.bus_for(p.dest),
             current_.cycle);
  };

  const send_fn send_response = [&](const packet& reply) {
    packet stamped = reply;
    stamped.issue = current_.cycle;
    sys_.response_xbar_.enqueue(stamped);
    schedule(phase_response_bus, sys_.response_xbar_.bus_for(stamped.dest),
             current_.cycle);
  };

  const deliver_fn deliver_request = [&](const packet& p, cycle_t rb,
                                         cycle_t re) {
    if (sys_.cfg_.record_traces) {
      sys_.request_trace_.add({p.dest, p.source, rb, re, p.critical});
    }
    auto& target = sys_.targets_[static_cast<std::size_t>(p.dest)];
    target.on_request(p, re);
    schedule(phase_target, p.dest, target.next_wake(current_.cycle));
  };

  const deliver_fn deliver_response = [&](const packet& p, cycle_t rb,
                                          cycle_t re) {
    if (sys_.cfg_.record_traces) {
      sys_.response_trace_.add({p.dest, p.source, rb, re, p.critical});
    }
    auto& core = sys_.cores_[static_cast<std::size_t>(p.dest)];
    core.on_response(p, re);
    schedule(phase_core, p.dest, core.next_wake(current_.cycle + 1));
  };

  processing_ = true;
  cycle_t last_cycle = start_ - 1;
  while (!queue_.empty() && queue_.top().cycle < horizon) {
    current_ = queue_.pop();
    auto& stepped = last_stepped_[static_cast<std::size_t>(
        gid(current_.phase, current_.component))];
    if (stepped == current_.cycle) {
      ++stats_.events_skipped;
      continue;
    }
    stepped = current_.cycle;
    if (current_.cycle != last_cycle) {
      last_cycle = current_.cycle;
      ++stats_.cycles_visited;
    }
    ++stats_.events_processed;

    const int comp = current_.component;
    const cycle_t now = current_.cycle;
    switch (current_.phase) {
      case phase_core: {
        auto& c = sys_.cores_[static_cast<std::size_t>(comp)];
        const auto board_version = sys_.barriers_.version();
        c.step(now, send_request, sys_.barriers_);
        if (sys_.barriers_.version() != board_version) wake_all_cores();
        schedule(phase_core, comp, c.next_wake(now + 1));
        break;
      }
      case phase_request_bus: {
        sys_.request_xbar_.wake_bus(comp, now, deliver_request);
        schedule(phase_request_bus, comp,
                 sys_.request_xbar_.bus_next_wake(comp, now + 1));
        break;
      }
      case phase_target: {
        auto& t = sys_.targets_[static_cast<std::size_t>(comp)];
        t.step(now, send_response);
        schedule(phase_target, comp, t.next_wake(now + 1));
        break;
      }
      case phase_response_bus: {
        sys_.response_xbar_.wake_bus(comp, now, deliver_response);
        schedule(phase_response_bus, comp,
                 sys_.response_xbar_.bus_next_wake(comp, now + 1));
        break;
      }
      default:
        throw internal_error("unknown engine phase");
    }
  }
  processing_ = false;

  // Settle the lazy busy accounting of in-flight transfers so
  // utilisation queries at this horizon match the polling kernel.
  sys_.request_xbar_.sync_busy(horizon);
  sys_.response_xbar_.sync_busy(horizon);
}

}  // namespace stx::sim
