// Unified simulation-session API: the one place that builds an MPSoC
// system, runs it to a horizon and harvests traces + metrics.
//
// Every consumer of the simulator (the design flow's phase-1 collection
// and phase-4 validation in src/xbar, the exploration engine's trace
// cache in src/explore, the fuzz oracle's differential re-simulation in
// src/testkit) used to hand-wire cores/buses/targets and re-derive its
// own metrics; a session keeps that plumbing — and the metrics harvest —
// in exactly one place, so the consumers cannot diverge on how a run is
// measured. workloads::make_session builds one from an app_spec.
#pragma once

#include <optional>

#include "sim/system.h"

namespace stx::sim {

/// Everything a consumer reads off one finished run. Harvested once per
/// horizon and cached by the session: the underlying mpsoc_system
/// accumulators (total_transactions / total_iterations / packet_latency)
/// recompute by full scan per query, so repeated metric reads against a
/// session cost O(1) instead of O(cores + samples).
struct run_metrics {
  double avg_latency = 0.0;   ///< mean packet latency, both crossbars
  double max_latency = 0.0;
  double p99_latency = 0.0;   ///< exact when samples kept, else max
  double avg_critical = 0.0;  ///< mean latency of critical packets (0 if none)
  double max_critical = 0.0;
  std::int64_t packets = 0;
  std::int64_t transactions = 0;
  std::int64_t iterations = 0;  ///< completed core loop iterations
  int total_buses = 0;          ///< request + response bus count

  bool operator==(const run_metrics&) const = default;
};

/// One simulation run from construction to a (resumable) horizon.
class session {
 public:
  /// Same contract as mpsoc_system's constructor.
  session(std::vector<std::vector<core_op>> programs, int num_targets,
          const system_config& cfg, std::vector<std::size_t> loop_starts = {});

  /// Advances the simulation to absolute cycle `horizon` (callable
  /// repeatedly with growing horizons); invalidates cached metrics.
  void run(cycle_t horizon);

  cycle_t now() const { return system_.now(); }

  /// The harvested metrics at the current horizon (cached until the next
  /// run call).
  const run_metrics& metrics() const;

  /// Phase-1 functional traffic traces (cfg.record_traces required for
  /// them to be non-empty).
  const traffic::trace& request_trace() const {
    return system_.request_trace();
  }
  const traffic::trace& response_trace() const {
    return system_.response_trace();
  }

  /// The underlying system, for consumers needing component-level detail
  /// (per-bus utilisation, per-core round trips, event-kernel stats).
  const mpsoc_system& system() const { return system_; }

 private:
  /// High-water marks of the system's lifetime accumulators at the last
  /// obs flush; run() publishes only the delta so resumed sessions do not
  /// double-count (src/obs counters are process-wide sums).
  struct telemetry_marks {
    std::int64_t events_processed = 0;
    std::int64_t events_skipped = 0;
    std::int64_t cycles_visited = 0;
    std::int64_t transactions = 0;
    cycle_t busy_cycles = 0;
  };

  mpsoc_system system_;
  mutable std::optional<run_metrics> cached_;
  telemetry_marks flushed_;
};

/// The metrics harvest itself, exposed for consumers that hold a bare
/// system (benches): identical maths to session::metrics().
run_metrics harvest_metrics(const mpsoc_system& system);

}  // namespace stx::sim
