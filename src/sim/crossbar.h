// Crossbar: a set of buses plus the binding of receiving endpoints.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/bus.h"
#include "util/stats.h"

namespace stx::sim {

/// Static description of one crossbar direction (initiator->target or
/// target->initiator). `binding[e]` is the bus that receiving endpoint
/// `e` is connected to; every sending endpoint reaches every bus (Fig. 1).
///
/// The three STbus instantiation types map to:
///   * shared bus:    num_buses == 1
///   * full crossbar: num_buses == #endpoints, binding[e] == e
///   * partial:       anything in between (what the synthesis produces)
struct crossbar_config {
  int num_buses = 1;
  std::vector<int> binding;
  arbitration policy = arbitration::round_robin;
  /// Fixed per-packet cost (arbitration + frequency/size adapters).
  cycle_t transfer_overhead = 2;

  /// Single shared bus over `n` receiving endpoints.
  static crossbar_config shared(int n);
  /// One bus per receiving endpoint.
  static crossbar_config full(int n);
  /// Partial crossbar with an explicit binding.
  static crossbar_config partial(int num_buses, std::vector<int> binding);

  /// Validates shape: binding size n, bus ids in range, every bus id
  /// optionally used. Throws on malformed configs.
  void validate(int n_endpoints) const;

  /// Human-readable summary, e.g. "partial(3 buses: [0,0,1,2,...])".
  std::string to_string() const;
};

/// Runtime crossbar: owns the buses, routes packets by destination
/// binding, and aggregates latency/utilisation metrics.
class crossbar {
 public:
  /// `num_send_ports`: how many sending endpoints (each bus gets that
  /// many input ports). `keep_samples`: retain per-packet latencies for
  /// exact percentiles (benches want this; long soaks may not).
  crossbar(const crossbar_config& cfg, int num_send_ports,
           int num_recv_endpoints, bool keep_samples = true);

  /// Queues `p` on the bus owning `p.dest` at input port `p.source`.
  void enqueue(const packet& p);

  /// Steps every bus one cycle; `deliver` fires for each completed packet
  /// after latency accounting. Per-cycle entry point (kept for the unit
  /// tests; the system runs on the event kernel).
  void step(cycle_t now, const deliver_fn& deliver);

  /// Event-kernel entry point: wakes one bus (same latency accounting as
  /// step). See bus::wake for the call contract.
  void wake_bus(int k, cycle_t now, const deliver_fn& deliver);

  /// Next wake cycle of bus `k` (no_wake when drained).
  cycle_t bus_next_wake(int k, cycle_t earliest) const;

  /// The bus that receiving endpoint `dest` is bound to.
  int bus_for(int dest) const;

  /// Settles lazy busy accounting of every bus up to `now` (event kernel
  /// run boundary).
  void sync_busy(cycle_t now);

  const crossbar_config& config() const { return cfg_; }
  int num_buses() const { return static_cast<int>(buses_.size()); }
  const bus& bus_at(int k) const;

  /// Per-packet latency (enqueue to last cell delivered), all packets.
  const running_stats& latency() const { return latency_; }
  /// Latency restricted to packets flagged critical.
  const running_stats& critical_latency() const { return critical_latency_; }

  /// Utilisation of bus `k` over `elapsed` cycles, in [0, 1].
  double utilization(int k, cycle_t elapsed) const;

  /// True when no bus holds queued or in-flight packets.
  bool drained() const;

 private:
  crossbar_config cfg_;
  std::vector<bus> buses_;
  running_stats latency_;
  running_stats critical_latency_;
};

}  // namespace stx::sim
