// Packet model for the STbus-style interconnect simulator.
#pragma once

#include <cstdint>
#include <functional>

#include "traffic/trace.h"

namespace stx::sim {

using cycle_t = traffic::cycle_t;

/// What a packet is doing in the transaction protocol.
enum class packet_kind {
  request_read,   ///< initiator -> target: read request (address beat)
  request_write,  ///< initiator -> target: write request carrying data
  response_read,  ///< target -> initiator: read data return
  response_ack,   ///< target -> initiator: write completion acknowledge
};

/// One packet travelling over one crossbar direction. `cells` is the
/// number of bus beats the packet occupies (one cell per cycle once
/// granted); `response_cells` on a request tells the target how large the
/// reply must be.
struct packet {
  int source = 0;          ///< sending endpoint id on this crossbar
  int dest = 0;            ///< receiving endpoint id on this crossbar
  int cells = 1;           ///< beats on the bus
  int response_cells = 1;  ///< size of the reply this request asks for
  packet_kind kind = packet_kind::request_read;
  bool critical = false;   ///< belongs to a real-time stream
  cycle_t issue = 0;       ///< cycle the packet entered the crossbar queue
  std::int64_t txn = 0;    ///< transaction id for request/response pairing
};

/// Sink for packets a component wants to send (routed by the system into
/// the appropriate crossbar).
using send_fn = std::function<void(const packet&)>;

}  // namespace stx::sim
