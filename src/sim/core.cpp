#include "sim/core.h"

#include <algorithm>
#include <cmath>

#include "sim/event_queue.h"
#include "util/error.h"

namespace stx::sim {

void barrier_board::arrive(int barrier_id, std::int64_t epoch) {
  const std::int64_t key =
      (static_cast<std::int64_t>(barrier_id) << 32) | (epoch & 0xffffffff);
  const int idx = find(key);
  if (idx >= 0) {
    ++counts_[static_cast<std::size_t>(idx)].second;
  } else {
    counts_.emplace_back(key, 1);
  }
  ++version_;
}

bool barrier_board::open(int barrier_id, std::int64_t epoch,
                         int group_size) const {
  const std::int64_t key =
      (static_cast<std::int64_t>(barrier_id) << 32) | (epoch & 0xffffffff);
  const int idx = find(key);
  return idx >= 0 &&
         counts_[static_cast<std::size_t>(idx)].second >= group_size;
}

int barrier_board::find(std::int64_t key) const {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i].first == key) return static_cast<int>(i);
  }
  return -1;
}

core::core(int id, std::vector<core_op> program, const core_params& params,
           rng jitter_rng, std::size_t loop_start)
    : id_(id),
      program_(std::move(program)),
      params_(params),
      rng_(jitter_rng),
      loop_start_(loop_start),
      barrier_visits_(program_.size(), 0),
      round_trip_(/*keep_samples=*/false) {
  STX_REQUIRE(!program_.empty(), "core program must not be empty");
  STX_REQUIRE(loop_start_ < program_.size(),
              "loop_start must index into the program");
  for (const auto& op : program_) {
    if (op.op == core_op::kind::barrier) {
      STX_REQUIRE(op.group_size > 0, "barrier needs a positive group size");
    }
    if (op.op == core_op::kind::read || op.op == core_op::kind::write) {
      STX_REQUIRE(op.cells > 0, "transfer ops need a positive cell count");
    }
  }
}

void core::advance() {
  if (program_[pc_].op == core_op::kind::barrier) {
    ++barrier_visits_[pc_];
    bphase_ = barrier_phase::announce;
  }
  ++pc_;
  if (pc_ == program_.size()) {
    pc_ = loop_start_;
    ++iterations_;
  }
  state_ = state::ready;
}

void core::step(cycle_t now, const send_fn& send, barrier_board& barriers) {
  if (state_ == state::waiting_response) return;
  if (state_ == state::computing) {
    if (now < compute_done_) return;
    state_ = state::ready;
  }

  if (pending_arrival_) {
    // The barrier-arrival write was acknowledged: register on the board
    // and start polling (the first check may already find the barrier
    // open when this core is the last arriver).
    const auto& bop = program_[pc_];
    barriers.arrive(bop.barrier_id, barrier_visits_[pc_]);
    pending_arrival_ = false;
    bphase_ = barrier_phase::poll_wait;
    next_poll_ = now;
  }

  const auto& op = program_[pc_];
  switch (op.op) {
    case core_op::kind::compute: {
      const auto spread = static_cast<cycle_t>(
          std::llround(static_cast<double>(op.cycles) * params_.compute_jitter));
      const cycle_t duration = rng_.jitter(op.cycles, spread, 0);
      // Move past the compute op immediately; `computing` gates the next
      // op until compute_done_.
      advance();
      if (duration == 0) return;  // one op per cycle regardless
      compute_done_ = now + duration;
      state_ = state::computing;
      return;
    }
    case core_op::kind::read:
    case core_op::kind::write: {
      packet p;
      p.source = id_;
      p.dest = op.target;
      p.critical = op.critical;
      p.txn = next_txn_++;
      p.issue = now;
      if (op.op == core_op::kind::read) {
        p.kind = packet_kind::request_read;
        p.cells = params_.read_request_cells;
        p.response_cells = op.cells;
      } else {
        p.kind = packet_kind::request_write;
        p.cells = op.cells;
        p.response_cells = 1;
      }
      wait_txn_ = p.txn;
      request_issue_ = now;
      state_ = state::waiting_response;
      send(p);
      return;
    }
    case core_op::kind::barrier: {
      const std::int64_t epoch = barrier_visits_[pc_];
      switch (bphase_) {
        case barrier_phase::announce: {
          // Arrive: 1-cell write to the semaphore target; the arrival is
          // registered when the acknowledge returns (see on_response).
          packet p;
          p.source = id_;
          p.dest = op.target;
          p.kind = packet_kind::request_write;
          p.cells = 1;
          p.response_cells = 1;
          p.critical = op.critical;
          p.txn = next_txn_++;
          p.issue = now;
          wait_txn_ = p.txn;
          request_issue_ = now;
          state_ = state::waiting_response;
          send(p);
          return;
        }
        case barrier_phase::poll_wait: {
          if (barriers.open(op.barrier_id, epoch, op.group_size)) {
            advance();
            return;
          }
          if (now < next_poll_) return;
          packet p;
          p.source = id_;
          p.dest = op.target;
          p.kind = packet_kind::request_read;
          p.cells = 1;
          p.response_cells = 1;
          p.critical = op.critical;
          p.txn = next_txn_++;
          p.issue = now;
          wait_txn_ = p.txn;
          request_issue_ = now;
          bphase_ = barrier_phase::poll_inflight;
          state_ = state::waiting_response;
          send(p);
          return;
        }
        case barrier_phase::poll_inflight: {
          // Poll response processed in on_response; check the board now.
          if (barriers.open(op.barrier_id, epoch, op.group_size)) {
            advance();
          } else {
            bphase_ = barrier_phase::poll_wait;
            next_poll_ = now + params_.barrier_poll_interval;
          }
          return;
        }
      }
      return;
    }
  }
}

cycle_t core::next_wake(cycle_t earliest) const {
  switch (state_) {
    case state::waiting_response:
      // Only on_response unblocks; the kernel wakes us after delivery.
      return no_wake;
    case state::computing:
      return std::max(compute_done_, earliest);
    default:
      break;
  }
  // Between barrier polls with the board still closed, step() is a no-op
  // until next_poll_ — the only ready-state span the kernel may skip.
  // A board change before then re-wakes us through the arrival hook.
  if (!pending_arrival_ && program_[pc_].op == core_op::kind::barrier &&
      bphase_ == barrier_phase::poll_wait) {
    return std::max(next_poll_, earliest);
  }
  return earliest;
}

void core::on_response(const packet& p, cycle_t now) {
  STX_ENSURE(state_ == state::waiting_response,
             "core received a response while not waiting");
  STX_ENSURE(p.txn == wait_txn_, "response txn mismatch");
  round_trip_.add(static_cast<double>(now - request_issue_));

  const auto& op = program_[pc_];
  if (op.op == core_op::kind::barrier) {
    // Arrival ack: registration is deferred to step() because the board
    // reference lives there. Poll responses re-check the board in step().
    if (bphase_ == barrier_phase::announce) pending_arrival_ = true;
    state_ = state::ready;
    return;
  }
  ++transactions_;
  advance();
}

}  // namespace stx::sim
