#include "sim/batch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>

#include "obs/obs.h"
#include "util/error.h"

namespace stx::sim {

namespace {

/// `timer_` value of a component with no pending wake.
constexpr cycle_t timer_none = std::numeric_limits<cycle_t>::max();

/// One calendar entry: [flat component index g : 30][instance : 16]
/// [phase : 2][component : 16]. The flat index is strictly monotone in
/// (instance, phase, component), so sorting entries as integers yields
/// exactly event_key order within a cycle while the drain reads the
/// timer_ slot straight out of the entry's high bits. add_instance()
/// enforces the field widths. Entries are built as
/// `ebase_[b*4+phase] + comp * entry_step`: the step adds comp to both
/// the g field and the comp field in one multiply.
constexpr std::uint64_t entry_step = (std::uint64_t{1} << 34) + 1;

/// Calendar ring span (power of two). Wakes further ahead than this are
/// rare (long compute ops) and take the overflow heap instead.
constexpr cycle_t ring_size = 1024;

}  // namespace

batch::batch(std::vector<std::vector<core_op>> programs, int num_targets,
             std::vector<std::size_t> loop_starts)
    : programs_(std::move(programs)),
      loop_starts_(std::move(loop_starts)),
      num_cores_(static_cast<int>(programs_.size())),
      num_targets_(num_targets) {
  STX_REQUIRE(!programs_.empty(), "system needs at least one core");
  STX_REQUIRE(num_targets > 0, "system needs at least one target");
  STX_REQUIRE(num_cores_ < (1 << 16) && num_targets < (1 << 16),
              "batch calendar packs component ids into 16 bits");
  STX_REQUIRE(loop_starts_.empty() || loop_starts_.size() == programs_.size(),
              "loop_starts must be empty or one per core");
  if (loop_starts_.empty()) loop_starts_.assign(programs_.size(), 0);

  visit_base_.reserve(programs_.size());
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    const auto& program = programs_[i];
    STX_REQUIRE(!program.empty(), "core program must not be empty");
    STX_REQUIRE(loop_starts_[i] < program.size(),
                "loop_start must index into the program");
    for (const auto& op : program) {
      if (op.op != core_op::kind::compute) {
        STX_REQUIRE(op.target >= 0 && op.target < num_targets,
                    "program references unknown target");
      }
      if (op.op == core_op::kind::barrier) {
        STX_REQUIRE(op.group_size > 0, "barrier needs a positive group size");
      }
      if (op.op == core_op::kind::read || op.op == core_op::kind::write) {
        STX_REQUIRE(op.cells > 0, "transfer ops need a positive cell count");
      }
    }
    visit_base_.push_back(ops_total_);
    ops_total_ += program.size();
  }

  st_.request.ports = num_cores_;
  st_.response.ports = num_targets_;
}

namespace {

void append_direction(batch_state::direction& d, const crossbar_config& cfg,
                      bool keep_samples) {
  STX_REQUIRE(cfg.transfer_overhead >= 0, "bus overhead must be non-negative");
  const int nb = cfg.num_buses;
  d.base.push_back(d.total_buses());
  d.count.push_back(nb);
  d.binding.push_back(cfg.binding);
  d.overhead.push_back(cfg.transfer_overhead);
  d.policy.push_back(cfg.policy);
  const auto old = static_cast<std::size_t>(d.total_buses());
  const auto grown = old + static_cast<std::size_t>(nb);
  d.transferring.resize(grown, 0);
  d.current.resize(grown);
  d.transfer_end.resize(grown, 0);
  d.recv_begin.resize(grown, 0);
  d.busy_from.resize(grown, 0);
  d.busy_cycles.resize(grown, 0);
  d.delivered.resize(grown, 0);
  d.max_depth.resize(grown, 0);
  d.rr_last.resize(grown, -1);
  d.backlog.resize(grown, 0);
  d.req_mask.resize(grown, 0);
  const auto ports = static_cast<std::size_t>(d.ports);
  d.lrg_last.resize(grown * ports, -1);
  d.queues.resize(grown * ports);
  d.latency.emplace_back(keep_samples);
  d.critical.emplace_back(keep_samples);
}

}  // namespace

int batch::add_instance(const system_config& cfg) {
  STX_REQUIRE(now_ == 0 && !processing_,
              "batch instances must be added before the first run");
  // Observer harvesting is the whole point: trace capture stays on
  // sim::session (the flow's phase-1 fallback path).
  STX_REQUIRE(!cfg.record_traces,
              "batch driver harvests observers, not traces; "
              "use sim::session for trace capture");
  cfg.request.validate(num_targets_);
  cfg.response.validate(num_cores_);
  STX_REQUIRE(cfg.request.num_buses < (1 << 16) &&
                  cfg.response.num_buses < (1 << 16),
              "batch calendar packs component ids into 16 bits");
  STX_REQUIRE(num_instances_ < (1 << 16),
              "batch calendar packs instance ids into 16 bits");
  STX_REQUIRE(cfg.target.service_latency >= 0, "negative service latency");

  const int b = num_instances_++;
  append_direction(st_.request, cfg.request, cfg.keep_latency_samples);
  append_direction(st_.response, cfg.response, cfg.keep_latency_samples);

  const auto cores = static_cast<std::size_t>(num_cores_);
  const auto new_cores = st_.core_state.size() + cores;
  st_.core_state.resize(new_cores, st_ready);
  st_.core_bphase.resize(new_cores, bp_announce);
  st_.core_pending_arrival.resize(new_cores, 0);
  st_.core_pc.resize(new_cores, 0);
  st_.core_compute_done.resize(new_cores, 0);
  st_.core_request_issue.resize(new_cores, 0);
  st_.core_next_poll.resize(new_cores, 0);
  st_.core_next_txn.resize(new_cores, 1);
  st_.core_wait_txn.resize(new_cores, 0);
  st_.core_iterations.resize(new_cores, 0);
  st_.core_transactions.resize(new_cores, 0);
  // The exact RNG stream discipline of mpsoc_system's constructor: one
  // seeder per instance, one decorrelated child per core.
  const rng seeder(cfg.seed);
  for (int i = 0; i < num_cores_; ++i) {
    st_.core_rng.push_back(seeder.split(static_cast<std::uint64_t>(i)));
  }
  st_.core_barrier_visits.resize(st_.core_barrier_visits.size() + ops_total_,
                                 0);

  const auto targets = static_cast<std::size_t>(num_targets_);
  st_.target_jobs.resize(st_.target_jobs.size() + targets);
  st_.target_busy_until.resize(st_.target_busy_until.size() + targets, 0);
  st_.target_served.resize(st_.target_served.size() + targets, 0);

  st_.board_counts.emplace_back();
  st_.board_version.push_back(0);
  st_.cores_cfg.push_back(cfg.core);
  st_.targets_cfg.push_back(cfg.target);
  st_.keep_samples.push_back(cfg.keep_latency_samples ? 1 : 0);

  comp_base_.push_back(total_comps_);
  const auto pack = [&](int phase, int gbase) {
    return (static_cast<std::uint64_t>(gbase) << 34) |
           (static_cast<std::uint64_t>(b) << 18) |
           (static_cast<std::uint64_t>(phase) << 16);
  };
  ebase_.push_back(pack(phase_core, total_comps_));
  ebase_.push_back(pack(phase_request_bus, total_comps_ + num_cores_));
  ebase_.push_back(pack(
      phase_target, total_comps_ + num_cores_ + cfg.request.num_buses));
  ebase_.push_back(pack(phase_response_bus, total_comps_ + num_cores_ +
                                                cfg.request.num_buses +
                                                num_targets_));
  total_comps_ += num_cores_ + cfg.request.num_buses + num_targets_ +
                  cfg.response.num_buses;
  STX_REQUIRE(total_comps_ < (1 << 30),
              "batch calendar packs flat component indices into 30 bits");
  last_cycle_.push_back(-1);
  stats_.emplace_back();
  cached_.emplace_back();
  return b;
}

int batch::gid(int b, int phase, int comp) const {
  switch (phase) {
    case phase_core: return comp;
    case phase_request_bus: return num_cores_ + comp;
    case phase_target:
      return num_cores_ + st_.request.count[static_cast<std::size_t>(b)] +
             comp;
    case phase_response_bus:
      return num_cores_ + st_.request.count[static_cast<std::size_t>(b)] +
             num_targets_ + comp;
  }
  throw internal_error("unknown engine phase");
}

void batch::schedule(int b, int phase, int comp, cycle_t cycle) {
  if (cycle == no_wake) return;
  event_key k{std::max(cycle, start_), phase, comp};
  if (processing_ && b == cur_instance_ && k <= cur_) {
    k.cycle = cur_.cycle + 1;
  }
  if (k.cycle >= horizon_) return;
  // One live wake per component: an earlier-or-equal pending wake
  // supersedes this one. Whatever state change prompted it is already in
  // the SoA block, so the step at `timer_` sees it and the post-step
  // re-arm (next_wake over that state) recomputes any later wake that is
  // still needed — the engine processes such wakes as no-ops; here they
  // are simply never enqueued.
  const auto e =
      ebase_[static_cast<std::size_t>(b) * 4 + static_cast<std::size_t>(phase)] +
      static_cast<std::uint64_t>(comp) * entry_step;
  const auto g = static_cast<std::size_t>(e >> 34);
  if (timer_[g] <= k.cycle) return;
  timer_[g] = k.cycle;
  if (processing_ && k.cycle == cur_.cycle) {
    // A later-ordered wake at the cycle being drained (request issue,
    // same-cycle delivery): the drain merges these in key order.
    same_cycle_.push_back(e);
    std::push_heap(same_cycle_.begin(), same_cycle_.end(), std::greater<>());
  } else if (k.cycle - ring_head_ < ring_size) {
    buckets_[static_cast<std::size_t>(k.cycle & (ring_size - 1))].push_back(e);
  } else {
    overflow_.emplace_back(k.cycle, e);
    std::push_heap(overflow_.begin(), overflow_.end(), std::greater<>());
  }
}

void batch::seed_instance(int b) {
  // One polling-equivalent sweep at the start cycle, exactly like
  // engine::seed — each processed wake re-arms its component, keeping
  // resumed runs identical to one long run.
  const std::size_t sb = static_cast<std::size_t>(b);
  for (int i = 0; i < num_cores_; ++i) schedule(b, phase_core, i, start_);
  for (int k = 0; k < st_.request.count[sb]; ++k) {
    schedule(b, phase_request_bus, k, start_);
  }
  for (int t = 0; t < num_targets_; ++t) schedule(b, phase_target, t, start_);
  for (int k = 0; k < st_.response.count[sb]; ++k) {
    schedule(b, phase_response_bus, k, start_);
  }
}

// ---------------------------------------------------------------------------
// Barrier board (port of barrier_board with per-instance storage).

void batch::board_arrive(int b, int barrier_id, std::int64_t epoch) {
  const std::int64_t key =
      (static_cast<std::int64_t>(barrier_id) << 32) | (epoch & 0xffffffff);
  auto& counts = st_.board_counts[static_cast<std::size_t>(b)];
  bool found = false;
  for (auto& [k, n] : counts) {
    if (k == key) {
      ++n;
      found = true;
      break;
    }
  }
  if (!found) counts.emplace_back(key, 1);
  ++st_.board_version[static_cast<std::size_t>(b)];
}

bool batch::board_open(int b, int barrier_id, std::int64_t epoch,
                       int group_size) const {
  const std::int64_t key =
      (static_cast<std::int64_t>(barrier_id) << 32) | (epoch & 0xffffffff);
  for (const auto& [k, n] : st_.board_counts[static_cast<std::size_t>(b)]) {
    if (k == key) return n >= group_size;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Core (port of core::step / advance / on_response / next_wake).

void batch::core_advance(int b, int i) {
  const std::size_t x = cidx(b, i);
  const auto& program = programs_[static_cast<std::size_t>(i)];
  if (program[st_.core_pc[x]].op == core_op::kind::barrier) {
    ++st_.core_barrier_visits[vidx(b, i, st_.core_pc[x])];
    st_.core_bphase[x] = bp_announce;
  }
  ++st_.core_pc[x];
  if (st_.core_pc[x] == program.size()) {
    st_.core_pc[x] = static_cast<std::uint32_t>(
        loop_starts_[static_cast<std::size_t>(i)]);
    ++st_.core_iterations[x];
  }
  st_.core_state[x] = st_ready;
}

void batch::core_step(int b, int i, cycle_t now) {
  const std::size_t x = cidx(b, i);
  if (st_.core_state[x] == st_waiting) return;
  if (st_.core_state[x] == st_computing) {
    if (now < st_.core_compute_done[x]) return;
    st_.core_state[x] = st_ready;
  }
  const auto& program = programs_[static_cast<std::size_t>(i)];

  if (st_.core_pending_arrival[x]) {
    const auto& bop = program[st_.core_pc[x]];
    board_arrive(b, bop.barrier_id,
                 st_.core_barrier_visits[vidx(b, i, st_.core_pc[x])]);
    st_.core_pending_arrival[x] = 0;
    st_.core_bphase[x] = bp_poll_wait;
    st_.core_next_poll[x] = now;
  }

  const auto& op = program[st_.core_pc[x]];
  const auto& params = st_.cores_cfg[static_cast<std::size_t>(b)];
  switch (op.op) {
    case core_op::kind::compute: {
      const auto spread = static_cast<cycle_t>(std::llround(
          static_cast<double>(op.cycles) * params.compute_jitter));
      const cycle_t duration = st_.core_rng[x].jitter(op.cycles, spread, 0);
      core_advance(b, i);
      if (duration == 0) return;  // one op per cycle regardless
      st_.core_compute_done[x] = now + duration;
      st_.core_state[x] = st_computing;
      return;
    }
    case core_op::kind::read:
    case core_op::kind::write: {
      packet p;
      p.source = i;
      p.dest = op.target;
      p.critical = op.critical;
      p.txn = st_.core_next_txn[x]++;
      p.issue = now;
      if (op.op == core_op::kind::read) {
        p.kind = packet_kind::request_read;
        p.cells = params.read_request_cells;
        p.response_cells = op.cells;
      } else {
        p.kind = packet_kind::request_write;
        p.cells = op.cells;
        p.response_cells = 1;
      }
      st_.core_wait_txn[x] = p.txn;
      st_.core_request_issue[x] = now;
      st_.core_state[x] = st_waiting;
      send_request(b, p);
      return;
    }
    case core_op::kind::barrier: {
      const std::int64_t epoch =
          st_.core_barrier_visits[vidx(b, i, st_.core_pc[x])];
      switch (st_.core_bphase[x]) {
        case bp_announce: {
          packet p;
          p.source = i;
          p.dest = op.target;
          p.kind = packet_kind::request_write;
          p.cells = 1;
          p.response_cells = 1;
          p.critical = op.critical;
          p.txn = st_.core_next_txn[x]++;
          p.issue = now;
          st_.core_wait_txn[x] = p.txn;
          st_.core_request_issue[x] = now;
          st_.core_state[x] = st_waiting;
          send_request(b, p);
          return;
        }
        case bp_poll_wait: {
          if (board_open(b, op.barrier_id, epoch, op.group_size)) {
            core_advance(b, i);
            return;
          }
          if (now < st_.core_next_poll[x]) return;
          packet p;
          p.source = i;
          p.dest = op.target;
          p.kind = packet_kind::request_read;
          p.cells = 1;
          p.response_cells = 1;
          p.critical = op.critical;
          p.txn = st_.core_next_txn[x]++;
          p.issue = now;
          st_.core_wait_txn[x] = p.txn;
          st_.core_request_issue[x] = now;
          st_.core_bphase[x] = bp_poll_inflight;
          st_.core_state[x] = st_waiting;
          send_request(b, p);
          return;
        }
        case bp_poll_inflight: {
          if (board_open(b, op.barrier_id, epoch, op.group_size)) {
            core_advance(b, i);
          } else {
            st_.core_bphase[x] = bp_poll_wait;
            st_.core_next_poll[x] = now + params.barrier_poll_interval;
          }
          return;
        }
      }
      return;
    }
  }
}

cycle_t batch::core_next_wake(int b, int i, cycle_t earliest) const {
  const std::size_t x = cidx(b, i);
  switch (st_.core_state[x]) {
    case st_waiting:
      return no_wake;
    case st_computing:
      return std::max(st_.core_compute_done[x], earliest);
    default:
      break;
  }
  const auto& program = programs_[static_cast<std::size_t>(i)];
  if (!st_.core_pending_arrival[x] &&
      program[st_.core_pc[x]].op == core_op::kind::barrier &&
      st_.core_bphase[x] == bp_poll_wait) {
    return std::max(st_.core_next_poll[x], earliest);
  }
  return earliest;
}

void batch::core_on_response(int b, int i, const packet& p, cycle_t now) {
  (void)now;  // the session's round-trip stats are not a run_metrics input
  const std::size_t x = cidx(b, i);
  STX_ENSURE(st_.core_state[x] == st_waiting,
             "core received a response while not waiting");
  STX_ENSURE(p.txn == st_.core_wait_txn[x], "response txn mismatch");

  const auto& op = programs_[static_cast<std::size_t>(i)][st_.core_pc[x]];
  if (op.op == core_op::kind::barrier) {
    if (st_.core_bphase[x] == bp_announce) st_.core_pending_arrival[x] = 1;
    st_.core_state[x] = st_ready;
    return;
  }
  ++st_.core_transactions[x];
  core_advance(b, i);
}

// ---------------------------------------------------------------------------
// Bus (port of bus::enqueue / start_transfer / wake / next_wake) with the
// arbiter state flattened into the direction arrays.

void batch::bus_enqueue(batch_state::direction& d, int gb, int port,
                        const packet& p) {
  STX_REQUIRE(port >= 0 && port < d.ports, "bus port out of range");
  STX_REQUIRE(p.cells > 0, "packet must occupy at least one cell");
  auto& q = d.queues[static_cast<std::size_t>(gb) *
                         static_cast<std::size_t>(d.ports) +
                     static_cast<std::size_t>(port)];
  if (q.empty()) {
    ++d.backlog[static_cast<std::size_t>(gb)];
    if (port < 64) {
      d.req_mask[static_cast<std::size_t>(gb)] |= std::uint64_t{1} << port;
    }
  }
  q.push(p);
  auto& depth = d.max_depth[static_cast<std::size_t>(gb)];
  depth = std::max(depth, static_cast<int>(q.size()));
}

bool batch::bus_has_backlog(const batch_state::direction& d, int gb) const {
  return d.backlog[static_cast<std::size_t>(gb)] > 0;
}

int batch::arbiter_pick(batch_state::direction& d, int gb, int inst,
                        cycle_t now) {
  const auto base =
      static_cast<std::size_t>(gb) * static_cast<std::size_t>(d.ports);
  // Bit-scan path: the occupancy mask replaces one queue-header load per
  // port. Identical grant choices — the mask is exactly "which ports are
  // requesting". Shapes wider than 64 ports take the legacy scan.
  if (d.ports <= 64) {
    const std::uint64_t mask = d.req_mask[static_cast<std::size_t>(gb)];
    if (mask == 0) return -1;
    switch (d.policy[static_cast<std::size_t>(inst)]) {
      case arbitration::fixed_priority:
        return std::countr_zero(mask);
      case arbitration::round_robin: {
        auto& last = d.rr_last[static_cast<std::size_t>(gb)];
        const int s = last + 1 == d.ports ? 0 : last + 1;
        const std::uint64_t ge = mask & ~((std::uint64_t{1} << s) - 1);
        const int p = std::countr_zero(ge != 0 ? ge : mask);
        last = p;
        return p;
      }
      case arbitration::least_recently_granted: {
        int best = -1;
        cycle_t best_time = 0;
        for (std::uint64_t m = mask; m != 0; m &= m - 1) {
          const int p = std::countr_zero(m);
          const cycle_t t = d.lrg_last[base + static_cast<std::size_t>(p)];
          if (best < 0 || t < best_time) {
            best = p;
            best_time = t;
          }
        }
        d.lrg_last[base + static_cast<std::size_t>(best)] = now;
        return best;
      }
    }
    throw invalid_argument_error("unknown arbitration policy");
  }
  const auto requesting = [&](int p) {
    return !d.queues[base + static_cast<std::size_t>(p)].empty();
  };
  switch (d.policy[static_cast<std::size_t>(inst)]) {
    case arbitration::fixed_priority: {
      for (int p = 0; p < d.ports; ++p) {
        if (requesting(p)) return p;
      }
      return -1;
    }
    case arbitration::round_robin: {
      auto& last = d.rr_last[static_cast<std::size_t>(gb)];
      int p = last + 1 == d.ports ? 0 : last + 1;
      for (int k = 0; k < d.ports; ++k) {
        if (requesting(p)) {
          last = p;
          return p;
        }
        if (++p == d.ports) p = 0;
      }
      return -1;
    }
    case arbitration::least_recently_granted: {
      int best = -1;
      cycle_t best_time = 0;
      for (int p = 0; p < d.ports; ++p) {
        if (!requesting(p)) continue;
        const cycle_t t = d.lrg_last[base + static_cast<std::size_t>(p)];
        if (best < 0 || t < best_time) {
          best = p;
          best_time = t;
        }
      }
      if (best >= 0) d.lrg_last[base + static_cast<std::size_t>(best)] = now;
      return best;
    }
  }
  throw invalid_argument_error("unknown arbitration policy");
}

bool batch::bus_start_transfer(batch_state::direction& d, int gb, int inst,
                               cycle_t now) {
  const auto sgb = static_cast<std::size_t>(gb);
  if (d.backlog[sgb] == 0) return false;  // spurious wake: skip the scan
  const int granted = arbiter_pick(d, gb, inst, now);
  if (granted < 0) return false;
  auto& q = d.queues[sgb * static_cast<std::size_t>(d.ports) +
                     static_cast<std::size_t>(granted)];
  d.current[sgb] = q.front();
  q.pop();
  if (q.empty()) {
    --d.backlog[sgb];
    if (granted < 64) {
      d.req_mask[sgb] &= ~(std::uint64_t{1} << granted);
    }
  }
  d.transferring[sgb] = 1;
  // Grant cycle is the first overhead cycle; the receive interval spans
  // the whole occupancy (overhead + cells), exactly as bus::start_transfer.
  d.recv_begin[sgb] = now;
  d.transfer_end[sgb] = now + d.overhead[static_cast<std::size_t>(inst)] +
                        d.current[sgb].cells;
  return true;
}

bool batch::bus_wake(batch_state::direction& d, int gb, int inst, cycle_t now,
                     packet& out, cycle_t& rb, cycle_t& re) {
  const auto sgb = static_cast<std::size_t>(gb);
  const auto complete = [&] {
    d.busy_cycles[sgb] += d.transfer_end[sgb] - d.busy_from[sgb];
    d.transferring[sgb] = 0;
    ++d.delivered[sgb];
    out = d.current[sgb];
    rb = d.recv_begin[sgb];
    re = d.transfer_end[sgb];
  };
  if (d.transferring[sgb]) {
    // Completion wake, or a spurious backlog wake while busy (no-op).
    if (now + 1 >= d.transfer_end[sgb]) {
      complete();
      return true;
    }
    return false;
  }
  if (!bus_start_transfer(d, gb, inst, now)) return false;
  d.busy_from[sgb] = now;
  if (now + 1 >= d.transfer_end[sgb]) {
    complete();
    return true;
  }
  return false;
}

cycle_t batch::bus_next_wake(const batch_state::direction& d, int gb,
                             cycle_t earliest) const {
  const auto sgb = static_cast<std::size_t>(gb);
  if (d.transferring[sgb]) {
    return std::max(d.transfer_end[sgb] - 1, earliest);
  }
  if (bus_has_backlog(d, gb)) return earliest;
  return no_wake;
}

// ---------------------------------------------------------------------------
// Target (port of memory_target::on_request / step / next_wake).

void batch::target_step(int b, int t, cycle_t now) {
  const std::size_t x = tidx(b, t);
  auto& jobs = st_.target_jobs[x];
  while (!jobs.empty() && jobs.front().ready_at <= now) {
    const auto& req = jobs.front().request;
    packet reply;
    reply.source = t;
    reply.dest = req.source;
    reply.txn = req.txn;
    reply.critical = req.critical;
    if (req.kind == packet_kind::request_read) {
      reply.kind = packet_kind::response_read;
      reply.cells = req.response_cells;
    } else {
      reply.kind = packet_kind::response_ack;
      reply.cells = 1;
    }
    send_response(b, reply);
    jobs.pop();
    ++st_.target_served[x];
  }
}

cycle_t batch::target_next_wake(int b, int t, cycle_t earliest) const {
  const auto& jobs = st_.target_jobs[tidx(b, t)];
  if (jobs.empty()) return no_wake;
  return std::max(jobs.front().ready_at, earliest);
}

// ---------------------------------------------------------------------------
// Routing (port of the engine's send_request / send_response hooks).

void batch::send_request(int b, const packet& p) {
  const std::size_t sb = static_cast<std::size_t>(b);
  const int k = st_.request.binding[sb][static_cast<std::size_t>(p.dest)];
  bus_enqueue(st_.request, st_.request.base[sb] + k, p.source, p);
  schedule(b, phase_request_bus, k, cur_.cycle);
}

void batch::send_response(int b, const packet& reply) {
  const std::size_t sb = static_cast<std::size_t>(b);
  packet stamped = reply;
  stamped.issue = cur_.cycle;
  const int k =
      st_.response.binding[sb][static_cast<std::size_t>(stamped.dest)];
  bus_enqueue(st_.response, st_.response.base[sb] + k, stamped.source,
              stamped);
  schedule(b, phase_response_bus, k, cur_.cycle);
}

// ---------------------------------------------------------------------------
// Event dispatch (port of engine::run's switch).

void batch::process_event(int b, const event_key& key) {
  // No pop-time dedup here: the per-component timer supersedes duplicate
  // and stale wakes before they are dispatched (the drain counts them as
  // events_skipped), so every call is a live component step.
  const std::size_t sb = static_cast<std::size_t>(b);
  if (key.cycle != last_cycle_[sb]) {
    last_cycle_[sb] = key.cycle;
    ++stats_[sb].cycles_visited;
  }
  ++stats_[sb].events_processed;

  cur_ = key;
  cur_instance_ = b;
  const int comp = key.component;
  const cycle_t now = key.cycle;
  switch (key.phase) {
    case phase_core: {
      const auto board_version = st_.board_version[sb];
      core_step(b, comp, now);
      if (st_.board_version[sb] != board_version) {
        for (int i = 0; i < num_cores_; ++i) {
          schedule(b, phase_core, i, cur_.cycle);
        }
      }
      schedule(b, phase_core, comp, core_next_wake(b, comp, now + 1));
      break;
    }
    case phase_request_bus: {
      const int gb = st_.request.base[sb] + comp;
      packet p;
      cycle_t rb = 0;
      cycle_t re = 0;
      if (bus_wake(st_.request, gb, b, now, p, rb, re)) {
        const auto lat = static_cast<double>(re - p.issue);
        st_.request.latency[sb].add(lat);
        if (p.critical) st_.request.critical[sb].add(lat);
        const std::size_t x = tidx(b, p.dest);
        const cycle_t start =
            std::max(re, st_.target_busy_until[x]);
        batch_state::target_job j;
        j.request = p;
        j.ready_at = start + st_.targets_cfg[sb].service_latency;
        st_.target_busy_until[x] = j.ready_at;
        st_.target_jobs[x].push(j);
        schedule(b, phase_target, p.dest,
                 target_next_wake(b, p.dest, cur_.cycle));
      }
      schedule(b, phase_request_bus, comp,
               bus_next_wake(st_.request, gb, now + 1));
      break;
    }
    case phase_target: {
      target_step(b, comp, now);
      schedule(b, phase_target, comp, target_next_wake(b, comp, now + 1));
      break;
    }
    case phase_response_bus: {
      const int gb = st_.response.base[sb] + comp;
      packet p;
      cycle_t rb = 0;
      cycle_t re = 0;
      if (bus_wake(st_.response, gb, b, now, p, rb, re)) {
        const auto lat = static_cast<double>(re - p.issue);
        st_.response.latency[sb].add(lat);
        if (p.critical) st_.response.critical[sb].add(lat);
        core_on_response(b, p.dest, p, re);
        schedule(b, phase_core, p.dest,
                 core_next_wake(b, p.dest, cur_.cycle + 1));
      }
      schedule(b, phase_response_bus, comp,
               bus_next_wake(st_.response, gb, now + 1));
      break;
    }
    default:
      throw internal_error("unknown engine phase");
  }
}

void batch::run(cycle_t horizon) {
  STX_REQUIRE(horizon >= now_, "cannot run backwards");
  obs::span sp("sim.batch.run",
               {{"instances", static_cast<std::int64_t>(num_instances_)},
                {"horizon", static_cast<std::int64_t>(horizon)}});
  std::int64_t processed_before = 0;
  for (const auto& s : stats_) processed_before += s.events_processed;

  start_ = now_;
  horizon_ = horizon;
  if (horizon > start_ && num_instances_ > 0) {
    for (std::size_t b = 0; b < last_cycle_.size(); ++b) {
      last_cycle_[b] = start_ - 1;
    }
    // Fresh calendar per run: wakes past the old horizon were dropped,
    // and seeding re-derives them (one polling-equivalent sweep at
    // start_, each processed wake re-arming its component), keeping
    // resumed runs identical to one long run.
    timer_.assign(static_cast<std::size_t>(total_comps_), timer_none);
    buckets_.resize(static_cast<std::size_t>(ring_size));
    for (auto& bucket : buckets_) bucket.clear();
    overflow_.clear();
    same_cycle_.clear();
    ring_head_ = start_;
    for (int b = 0; b < num_instances_; ++b) seed_instance(b);

    // Lockstep frontier: the calendar walks every instance through cycle
    // c before any instance moves past it. Instances are independent, so
    // this grouping cannot change any per-instance event order — it
    // exists so the whole SoA block walks forward one cycle cohort at a
    // time (the shape a data-parallel device port needs). Sorting a
    // bucket yields (instance, phase, component) order; wakes scheduled
    // *at* the drain cycle (always later in key order, enforced by the
    // clamp above) merge in from the same_cycle_ heap.
    processing_ = true;
    for (cycle_t c = start_; c < horizon; ++c) {
      ring_head_ = c;
      auto& bucket = buckets_[static_cast<std::size_t>(c & (ring_size - 1))];
      while (!overflow_.empty() && overflow_.front().first == c) {
        bucket.push_back(overflow_.front().second);
        std::pop_heap(overflow_.begin(), overflow_.end(), std::greater<>());
        overflow_.pop_back();
      }
      if (bucket.empty()) continue;
      std::sort(bucket.begin(), bucket.end());
      std::size_t idx = 0;
      while (idx < bucket.size() || !same_cycle_.empty()) {
        std::uint64_t e;
        if (!same_cycle_.empty() &&
            (idx == bucket.size() || same_cycle_.front() < bucket[idx])) {
          std::pop_heap(same_cycle_.begin(), same_cycle_.end(),
                        std::greater<>());
          e = same_cycle_.back();
          same_cycle_.pop_back();
        } else {
          e = bucket[idx++];
        }
        const int b = static_cast<int>((e >> 18) & 0xffff);
        const event_key key{c, static_cast<int>((e >> 16) & 3),
                            static_cast<int>(e & 0xffff)};
        const auto g = static_cast<std::size_t>(e >> 34);
        if (timer_[g] != c) {
          // Superseded by an earlier wake that already stepped this
          // component (and re-armed it) — the engine's no-op class.
          ++stats_[static_cast<std::size_t>(b)].events_skipped;
          continue;
        }
        timer_[g] = timer_none;  // consumed; the step re-arms
        process_event(b, key);
      }
      bucket.clear();
    }
    processing_ = false;
    cur_instance_ = -1;

    // Settle lazy busy accounting at the run boundary (engine epilogue).
    const auto settle = [&](batch_state::direction& d) {
      for (std::size_t gb = 0; gb < d.transferring.size(); ++gb) {
        if (d.transferring[gb] && horizon > d.busy_from[gb]) {
          d.busy_cycles[gb] += horizon - d.busy_from[gb];
          d.busy_from[gb] = horizon;
        }
      }
    };
    settle(st_.request);
    settle(st_.response);
  }
  now_ = horizon;
  horizon_ = 0;
  for (auto& c : cached_) c.reset();

  if (obs::enabled()) {
    std::int64_t processed_after = 0;
    for (const auto& s : stats_) processed_after += s.events_processed;
    obs::add_counter("sim.batch.runs", 1);
    obs::add_counter("sim.batch.instances", num_instances_);
    obs::add_counter("sim.batch.events_processed",
                     processed_after - processed_before);
  }
}

// ---------------------------------------------------------------------------
// Observers.

run_metrics batch::harvest(int b) const {
  const std::size_t sb = static_cast<std::size_t>(b);
  const bool keep = st_.keep_samples[sb] != 0;
  run_metrics out;
  // Merge order matches mpsoc_system::packet_latency: request then
  // response, into a fresh accumulator — same doubles, same percentile.
  running_stats lat(keep);
  lat.merge(st_.request.latency[sb]);
  lat.merge(st_.response.latency[sb]);
  if (lat.count() > 0) {
    out.avg_latency = lat.mean();
    out.max_latency = lat.max();
    out.p99_latency = lat.keeps_samples() ? lat.percentile(0.99) : lat.max();
  }
  running_stats crit(keep);
  crit.merge(st_.request.critical[sb]);
  crit.merge(st_.response.critical[sb]);
  if (crit.count() > 0) {
    out.avg_critical = crit.mean();
    out.max_critical = crit.max();
  }
  out.packets = lat.count();
  for (int i = 0; i < num_cores_; ++i) {
    out.transactions += st_.core_transactions[cidx(b, i)];
    out.iterations += st_.core_iterations[cidx(b, i)];
  }
  out.total_buses = st_.request.count[sb] + st_.response.count[sb];
  return out;
}

const run_metrics& batch::metrics(int b) const {
  STX_REQUIRE(b >= 0 && b < num_instances_, "batch instance out of range");
  auto& slot = cached_[static_cast<std::size_t>(b)];
  if (!slot) slot = harvest(b);
  return *slot;
}

batch_observers batch::observers(int b) const {
  STX_REQUIRE(b >= 0 && b < num_instances_, "batch instance out of range");
  const std::size_t sb = static_cast<std::size_t>(b);
  batch_observers out;
  const auto accumulate = [&](const batch_state::direction& d) {
    const auto base = static_cast<std::size_t>(d.base[sb]);
    for (int k = 0; k < d.count[sb]; ++k) {
      const auto gb = base + static_cast<std::size_t>(k);
      out.busy_cycles += d.busy_cycles[gb];
      out.delivered_packets += d.delivered[gb];
      out.max_queue_depth = std::max(out.max_queue_depth, d.max_depth[gb]);
    }
  };
  accumulate(st_.request);
  accumulate(st_.response);
  for (int t = 0; t < num_targets_; ++t) {
    out.replies_served += st_.target_served[tidx(b, t)];
  }
  return out;
}

const engine_stats& batch::instance_stats(int b) const {
  STX_REQUIRE(b >= 0 && b < num_instances_, "batch instance out of range");
  return stats_[static_cast<std::size_t>(b)];
}

engine_stats batch::stats() const {
  engine_stats out;
  for (const auto& s : stats_) {
    out.events_processed += s.events_processed;
    out.events_skipped += s.events_skipped;
    out.cycles_visited += s.cycles_visited;
  }
  return out;
}

}  // namespace stx::sim
