#include "sim/arbiter.h"

#include "util/error.h"

namespace stx::sim {

const char* to_string(arbitration a) {
  switch (a) {
    case arbitration::fixed_priority: return "fixed_priority";
    case arbitration::round_robin: return "round_robin";
    case arbitration::least_recently_granted: return "least_recently_granted";
  }
  return "?";
}

namespace {

class fixed_priority_arbiter final : public arbiter {
 public:
  int pick(const std::vector<bool>& requesting, cycle_t) override {
    for (std::size_t p = 0; p < requesting.size(); ++p) {
      if (requesting[p]) return static_cast<int>(p);
    }
    return -1;
  }
};

class round_robin_arbiter final : public arbiter {
 public:
  explicit round_robin_arbiter(int num_ports) : num_ports_(num_ports) {}

  int pick(const std::vector<bool>& requesting, cycle_t) override {
    for (int k = 0; k < num_ports_; ++k) {
      const int p = (last_ + 1 + k) % num_ports_;
      if (requesting[static_cast<std::size_t>(p)]) {
        last_ = p;
        return p;
      }
    }
    return -1;
  }

 private:
  int num_ports_;
  int last_ = -1;
};

class lrg_arbiter final : public arbiter {
 public:
  explicit lrg_arbiter(int num_ports)
      : last_grant_(static_cast<std::size_t>(num_ports), -1) {}

  int pick(const std::vector<bool>& requesting, cycle_t now) override {
    int best = -1;
    cycle_t best_time = 0;
    for (std::size_t p = 0; p < requesting.size(); ++p) {
      if (!requesting[p]) continue;
      if (best < 0 || last_grant_[p] < best_time) {
        best = static_cast<int>(p);
        best_time = last_grant_[p];
      }
    }
    if (best >= 0) last_grant_[static_cast<std::size_t>(best)] = now;
    return best;
  }

 private:
  std::vector<cycle_t> last_grant_;
};

}  // namespace

std::unique_ptr<arbiter> make_arbiter(arbitration policy, int num_ports) {
  STX_REQUIRE(num_ports > 0, "arbiter needs at least one port");
  switch (policy) {
    case arbitration::fixed_priority:
      return std::make_unique<fixed_priority_arbiter>();
    case arbitration::round_robin:
      return std::make_unique<round_robin_arbiter>(num_ports);
    case arbitration::least_recently_granted:
      return std::make_unique<lrg_arbiter>(num_ports);
  }
  throw invalid_argument_error("unknown arbitration policy");
}

}  // namespace stx::sim
