// Program-driven processor core model (closed-loop initiator).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/packet.h"
#include "util/random.h"
#include "util/stats.h"

namespace stx::sim {

/// One instruction of a core's traffic program. Programs replace the ARM
/// ISS + benchmark binaries of the paper's MPARM environment: they
/// generate the same first-order traffic features (bursts, phase-aligned
/// accesses, sync traffic) while staying closed-loop — a core blocks on
/// its reads/writes, so traffic timing responds to interconnect design.
struct core_op {
  enum class kind {
    compute,  ///< stay silent for `cycles` (jittered per iteration)
    read,     ///< read `cells` data cells from `target` (blocks)
    write,    ///< write `cells` data cells to `target` (blocks on ack)
    barrier,  ///< synchronise with `group_size` cores via `target`
  };

  kind op = kind::compute;
  int target = 0;         ///< destination endpoint for read/write/barrier
  int cells = 1;          ///< payload size in bus cells
  cycle_t cycles = 0;     ///< compute duration
  bool critical = false;  ///< real-time stream marker
  int barrier_id = 0;     ///< distinct id per barrier op in the app
  int group_size = 0;     ///< cores participating in the barrier
};

/// Shared barrier scoreboard. Cores arriving at barrier (id, epoch)
/// increment the count; the barrier opens when `group_size` arrived.
class barrier_board {
 public:
  void arrive(int barrier_id, std::int64_t epoch);
  bool open(int barrier_id, std::int64_t epoch, int group_size) const;

  /// Bumped on every arrival. The event kernel compares it around each
  /// core step: a change means spinning cores may now see their barrier
  /// open and must be re-woken (the polling loop gets this for free by
  /// stepping every core every cycle).
  std::int64_t version() const { return version_; }

 private:
  /// arrivals[(barrier_id << 32) | epoch] — epochs are small in practice.
  std::vector<std::pair<std::int64_t, int>> counts_;
  std::int64_t version_ = 0;
  int find(std::int64_t key) const;
};

/// Knobs shared by all cores of a system.
struct core_params {
  /// Request packet size for reads (address beat count).
  int read_request_cells = 1;
  /// Cycles between semaphore polls while spinning on a barrier.
  cycle_t barrier_poll_interval = 40;
  /// Fractional jitter applied to compute durations per iteration
  /// (0.1 = +-10%), decorrelating cores that run identical programs.
  double compute_jitter = 0.10;
};

/// A processor core executing its program in a loop until the simulation
/// horizon. Issues requests through `send`; the system feeds responses
/// back via `on_response`.
class core {
 public:
  /// Ops before `loop_start` form a one-time prologue (e.g. a phase
  /// offset); the loop body is [loop_start, end).
  core(int id, std::vector<core_op> program, const core_params& params,
       rng jitter_rng, std::size_t loop_start = 0);

  /// Advances one cycle; may issue at most one new request.
  void step(cycle_t now, const send_fn& send, barrier_board& barriers);

  /// Response crossbar delivery for this core (matched by txn id).
  void on_response(const packet& p, cycle_t now);

  /// Earliest cycle >= `earliest` at which step() could change state, or
  /// no_wake when only an external event (a response delivery, a barrier
  /// arrival) can unblock this core. Spinning between barrier polls the
  /// core sleeps until next_poll_; the board opening earlier is signalled
  /// to the event kernel via barrier_board::version().
  cycle_t next_wake(cycle_t earliest) const;

  int id() const { return id_; }
  /// Completed program iterations (loop count).
  std::int64_t iterations() const { return iterations_; }
  /// Completed read/write transactions.
  std::int64_t transactions() const { return transactions_; }
  /// Round-trip latency of completed transactions (request issue to
  /// response fully delivered).
  const running_stats& round_trip() const { return round_trip_; }
  bool waiting() const { return state_ == state::waiting_response; }

 private:
  enum class state {
    ready,             ///< about to execute the current op
    computing,         ///< silent until compute_done_
    waiting_response,  ///< read/write in flight
    barrier_spin,      ///< between semaphore polls
  };

  void advance();  ///< move to the next op (wrapping and counting loops)

  int id_;
  std::vector<core_op> program_;
  core_params params_;
  rng rng_;
  std::size_t loop_start_ = 0;

  std::size_t pc_ = 0;
  state state_ = state::ready;
  cycle_t compute_done_ = 0;
  cycle_t request_issue_ = 0;
  std::int64_t next_txn_ = 1;
  std::int64_t wait_txn_ = 0;
  std::int64_t iterations_ = 0;
  std::int64_t transactions_ = 0;

  // Barrier progress for the current barrier op.
  enum class barrier_phase { announce, poll_wait, poll_inflight };
  barrier_phase bphase_ = barrier_phase::announce;
  bool pending_arrival_ = false;  ///< arrival ack seen; register next step
  cycle_t next_poll_ = 0;
  std::vector<std::int64_t> barrier_visits_;  ///< per-op epoch counters

  running_stats round_trip_;
};

}  // namespace stx::sim
