// Bus arbitration policies.
#pragma once

#include <memory>
#include <vector>

#include "sim/packet.h"

namespace stx::sim {

/// Arbitration policy selector for the per-bus arbiters (the "A" boxes of
/// Fig. 1). STbus nodes support programmable arbitration; we model the
/// three classic ones.
enum class arbitration {
  fixed_priority,           ///< lowest port index wins
  round_robin,              ///< rotating priority from last grant + 1
  least_recently_granted,   ///< port that has waited longest since a grant
};

const char* to_string(arbitration a);

/// Chooses which requesting input port gets the bus next. Stateful
/// (round-robin pointer / grant history); one instance per bus.
class arbiter {
 public:
  virtual ~arbiter() = default;

  /// Returns the granted port index, or -1 when no port requests.
  /// `requesting[p]` is true when port p has a packet ready; `now` is the
  /// current cycle (used by history-based policies).
  virtual int pick(const std::vector<bool>& requesting, cycle_t now) = 0;
};

/// Factory for a policy instance over `num_ports` ports.
std::unique_ptr<arbiter> make_arbiter(arbitration policy, int num_ports);

}  // namespace stx::sim
