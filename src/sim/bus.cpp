#include "sim/bus.h"

#include <algorithm>

#include "sim/event_queue.h"
#include "util/error.h"

namespace stx::sim {

bus::bus(int id, int num_ports, arbitration policy, cycle_t overhead)
    : id_(id),
      num_ports_(num_ports),
      overhead_(overhead),
      arbiter_(make_arbiter(policy, num_ports)),
      queues_(static_cast<std::size_t>(num_ports)),
      requesting_(static_cast<std::size_t>(num_ports), false) {
  STX_REQUIRE(overhead >= 0, "bus overhead must be non-negative");
}

void bus::enqueue(int port, const packet& p) {
  STX_REQUIRE(port >= 0 && port < num_ports_, "bus port out of range");
  STX_REQUIRE(p.cells > 0, "packet must occupy at least one cell");
  auto& q = queues_[static_cast<std::size_t>(port)];
  q.push_back(p);
  max_depth_ = std::max(max_depth_, static_cast<int>(q.size()));
}

bool bus::has_backlog() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

bool bus::start_transfer(cycle_t now) {
  bool any = false;
  for (int p = 0; p < num_ports_; ++p) {
    const bool req = !queues_[static_cast<std::size_t>(p)].empty();
    requesting_[static_cast<std::size_t>(p)] = req;
    any = any || req;
  }
  if (!any) return false;
  const int granted = arbiter_->pick(requesting_, now);
  STX_ENSURE(granted >= 0, "arbiter returned no grant despite requests");
  auto& q = queues_[static_cast<std::size_t>(granted)];
  current_ = q.front();
  q.pop_front();
  transferring_ = true;
  // The grant cycle itself is the first overhead cycle. The recorded
  // receive interval spans the packet's whole bus occupancy (overhead +
  // cells): the window bandwidth constraint (Eq. 4) budgets bus capacity,
  // and the adapter/arbitration cycles consume capacity just like cells.
  recv_begin_ = now;
  transfer_end_ = now + overhead_ + current_.cells;
  return true;
}

void bus::complete(const deliver_fn& deliver) {
  busy_cycles_ += transfer_end_ - busy_from_;
  transferring_ = false;
  ++delivered_;
  deliver(current_, recv_begin_, transfer_end_);
}

void bus::step(cycle_t now, const deliver_fn& deliver) {
  if (transferring_) {
    ++busy_cycles_;
    if (now + 1 >= transfer_end_) {
      // Last busy cycle: the final cell lands now.
      transferring_ = false;
      ++delivered_;
      deliver(current_, recv_begin_, transfer_end_);
    }
    return;
  }

  // Idle: arbitrate among ports with a pending packet.
  if (!start_transfer(now)) return;
  ++busy_cycles_;
  if (now + 1 >= transfer_end_) {
    // Single-cell packet with zero overhead completes immediately.
    transferring_ = false;
    ++delivered_;
    deliver(current_, recv_begin_, transfer_end_);
  }
}

void bus::wake(cycle_t now, const deliver_fn& deliver) {
  if (transferring_) {
    // Completion wake — or a spurious one (backlog wake while busy),
    // which must change nothing. The polling loop only arbitrates the
    // cycle AFTER a completion, so no new transfer starts here; the
    // engine re-arms us for the next cycle.
    if (now + 1 >= transfer_end_) complete(deliver);
    return;
  }
  if (!start_transfer(now)) return;
  busy_from_ = now;
  if (now + 1 >= transfer_end_) complete(deliver);
}

cycle_t bus::next_wake(cycle_t earliest) const {
  if (transferring_) return std::max(transfer_end_ - 1, earliest);
  if (has_backlog()) return earliest;
  return no_wake;
}

void bus::sync_busy(cycle_t now) {
  if (transferring_ && now > busy_from_) {
    busy_cycles_ += now - busy_from_;
    busy_from_ = now;
  }
}

}  // namespace stx::sim
