// MPSoC system simulator: cores + two crossbars + targets.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/core.h"
#include "sim/crossbar.h"
#include "sim/event_queue.h"
#include "sim/target.h"
#include "traffic/trace.h"
#include "util/stats.h"

namespace stx::sim {

/// Everything needed to instantiate a system around a set of programs.
/// Simulation runs on the event-driven calendar-queue kernel
/// (sim::engine): components register next-wake times and idle spans are
/// skipped in O(log n) per event instead of O(components) per cycle. The
/// legacy per-cycle polling loop soaked one release as the differential
/// reference (testkit invariant "kernel-equivalence", bit-identical
/// traces and statistics) and has been retired.
struct system_config {
  /// Initiator->target crossbar (binding size = number of targets).
  crossbar_config request;
  /// Target->initiator crossbar (binding size = number of initiators).
  crossbar_config response;
  target_params target;
  core_params core;
  /// Record delivered packets into functional traffic traces (phase 1 of
  /// the design flow). Costs memory on long runs; benches keep it on for
  /// collection runs and off for validation runs.
  bool record_traces = true;
  /// Retain per-packet latencies for exact percentiles.
  bool keep_latency_samples = true;
  /// Seed for per-core compute jitter.
  std::uint64_t seed = 1;
};

/// Cycle-accurate simulation of the Fig. 2(a) style MPSoC: program-driven
/// cores issue read/write/barrier traffic through the request crossbar;
/// memory targets reply through the response crossbar. Deterministic for
/// a given (programs, config, seed) triple.
class mpsoc_system {
 public:
  /// `programs[i]` is the traffic program of core `i`; `num_targets` is
  /// the number of receiving endpoints on the request side.
  /// `loop_starts[i]` (optional, default all 0) marks where core i's loop
  /// body begins; earlier ops run once as a prologue.
  mpsoc_system(std::vector<std::vector<core_op>> programs, int num_targets,
               const system_config& cfg,
               std::vector<std::size_t> loop_starts = {});

  /// Runs the simulation up to absolute cycle `horizon` (callable
  /// repeatedly with growing horizons).
  void run(cycle_t horizon);

  cycle_t now() const { return now_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  int num_targets() const { return static_cast<int>(targets_.size()); }
  /// Cores + targets + buses of both crossbars: the retired polling
  /// loop's per-cycle step count, i.e. the cost model the event kernel
  /// is measured against (sim perf guard, ablation_sim_throughput).
  int num_components() const;

  const crossbar& request_crossbar() const { return request_xbar_; }
  const crossbar& response_crossbar() const { return response_xbar_; }
  const core& core_at(int i) const;
  const memory_target& target_at(int t) const;

  /// Functional traffic traces recorded during the run (requires
  /// cfg.record_traces). The request trace keys events by target id; the
  /// response trace keys them by initiator id — each feeds the synthesis
  /// of its own crossbar direction.
  const traffic::trace& request_trace() const { return request_trace_; }
  const traffic::trace& response_trace() const { return response_trace_; }

  /// Packet latency over both crossbars combined (the paper's Table 1
  /// metric: latency incurred by packets on the interconnect).
  running_stats packet_latency() const;
  /// Same restricted to critical packets.
  running_stats critical_packet_latency() const;

  /// Completed read/write transactions across all cores.
  std::int64_t total_transactions() const;
  /// Completed program iterations across all cores (throughput signal).
  std::int64_t total_iterations() const;

  /// Accumulated event-kernel counters.
  const engine_stats& event_stats() const { return event_stats_; }

 private:
  friend class engine;

  void run_event(cycle_t horizon);

  system_config cfg_;
  std::vector<core> cores_;
  std::vector<memory_target> targets_;
  crossbar request_xbar_;
  crossbar response_xbar_;
  barrier_board barriers_;
  traffic::trace request_trace_;
  traffic::trace response_trace_;
  cycle_t now_ = 0;
  engine_stats event_stats_;
};

}  // namespace stx::sim
