#include "sim/system.h"

#include "sim/engine.h"
#include "util/error.h"

namespace stx::sim {

mpsoc_system::mpsoc_system(std::vector<std::vector<core_op>> programs,
                           int num_targets, const system_config& cfg,
                           std::vector<std::size_t> loop_starts)
    : cfg_(cfg),
      request_xbar_(cfg.request, static_cast<int>(programs.size()),
                    num_targets, cfg.keep_latency_samples),
      response_xbar_(cfg.response, num_targets,
                     static_cast<int>(programs.size()),
                     cfg.keep_latency_samples),
      request_trace_(num_targets, static_cast<int>(programs.size()), 0),
      response_trace_(static_cast<int>(programs.size()), num_targets, 0) {
  STX_REQUIRE(!programs.empty(), "system needs at least one core");
  STX_REQUIRE(num_targets > 0, "system needs at least one target");
  STX_REQUIRE(loop_starts.empty() || loop_starts.size() == programs.size(),
              "loop_starts must be empty or one per core");

  rng seeder(cfg.seed);
  cores_.reserve(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    // Validate program target ids against this system.
    for (const auto& op : programs[i]) {
      if (op.op != core_op::kind::compute) {
        STX_REQUIRE(op.target >= 0 && op.target < num_targets,
                    "program references unknown target");
      }
    }
    const std::size_t loop_start =
        loop_starts.empty() ? 0 : loop_starts[i];
    cores_.emplace_back(static_cast<int>(i), std::move(programs[i]),
                        cfg.core, seeder.split(i), loop_start);
  }
  targets_.reserve(static_cast<std::size_t>(num_targets));
  for (int t = 0; t < num_targets; ++t) {
    targets_.emplace_back(t, cfg.target);
  }
}

void mpsoc_system::run(cycle_t horizon) {
  STX_REQUIRE(horizon >= now_, "cannot run backwards");
  run_event(horizon);
  request_trace_.extend_horizon(now_);
  response_trace_.extend_horizon(now_);
}

void mpsoc_system::run_event(cycle_t horizon) {
  engine e(*this);
  e.run(horizon);
  now_ = horizon;
  event_stats_.events_processed += e.stats().events_processed;
  event_stats_.events_skipped += e.stats().events_skipped;
  event_stats_.cycles_visited += e.stats().cycles_visited;
}

int mpsoc_system::num_components() const {
  return num_cores() + num_targets() + request_xbar_.num_buses() +
         response_xbar_.num_buses();
}

const core& mpsoc_system::core_at(int i) const {
  STX_REQUIRE(i >= 0 && i < num_cores(), "core index out of range");
  return cores_[static_cast<std::size_t>(i)];
}

const memory_target& mpsoc_system::target_at(int t) const {
  STX_REQUIRE(t >= 0 && t < num_targets(), "target index out of range");
  return targets_[static_cast<std::size_t>(t)];
}

running_stats mpsoc_system::packet_latency() const {
  running_stats all(cfg_.keep_latency_samples);
  all.merge(request_xbar_.latency());
  all.merge(response_xbar_.latency());
  return all;
}

running_stats mpsoc_system::critical_packet_latency() const {
  running_stats all(cfg_.keep_latency_samples);
  all.merge(request_xbar_.critical_latency());
  all.merge(response_xbar_.critical_latency());
  return all;
}

std::int64_t mpsoc_system::total_transactions() const {
  std::int64_t acc = 0;
  for (const auto& c : cores_) acc += c.transactions();
  return acc;
}

std::int64_t mpsoc_system::total_iterations() const {
  std::int64_t acc = 0;
  for (const auto& c : cores_) acc += c.iterations();
  return acc;
}

}  // namespace stx::sim
