#include "sim/session.h"

#include "obs/obs.h"

namespace stx::sim {

namespace {

cycle_t total_busy_cycles(const mpsoc_system& system) {
  cycle_t busy = 0;
  const auto add = [&busy](const crossbar& xb) {
    for (int k = 0; k < xb.num_buses(); ++k) {
      busy += xb.bus_at(k).busy_cycles();
    }
  };
  add(system.request_crossbar());
  add(system.response_crossbar());
  return busy;
}

}  // namespace

session::session(std::vector<std::vector<core_op>> programs, int num_targets,
                 const system_config& cfg,
                 std::vector<std::size_t> loop_starts)
    : system_(std::move(programs), num_targets, cfg, std::move(loop_starts)) {}

void session::run(cycle_t horizon) {
  obs::span sp("sim.run", {{"horizon", static_cast<std::int64_t>(horizon)}});
  system_.run(horizon);
  cached_.reset();
  if (obs::enabled()) {
    // The system accumulators are lifetime totals and a session is
    // resumable, so flush only the delta since the last run() call —
    // counters then sum correctly across any number of sessions and
    // resumes.
    const auto& es = system_.event_stats();
    const telemetry_marks now_marks{
        es.events_processed, es.events_skipped, es.cycles_visited,
        system_.total_transactions(), total_busy_cycles(system_)};
    obs::add_counter("sim.runs", 1);
    obs::add_counter("sim.events_processed",
                     now_marks.events_processed - flushed_.events_processed);
    obs::add_counter("sim.events_skipped",
                     now_marks.events_skipped - flushed_.events_skipped);
    obs::add_counter("sim.cycles_visited",
                     now_marks.cycles_visited - flushed_.cycles_visited);
    obs::add_counter("sim.transactions",
                     now_marks.transactions - flushed_.transactions);
    obs::add_counter("sim.busy_cycles",
                     static_cast<std::int64_t>(now_marks.busy_cycles -
                                               flushed_.busy_cycles));
    flushed_ = now_marks;
  }
}

const run_metrics& session::metrics() const {
  if (!cached_) cached_ = harvest_metrics(system_);
  return *cached_;
}

run_metrics harvest_metrics(const mpsoc_system& system) {
  run_metrics out;
  const auto lat = system.packet_latency();
  if (lat.count() > 0) {
    out.avg_latency = lat.mean();
    out.max_latency = lat.max();
    out.p99_latency = lat.keeps_samples() ? lat.percentile(0.99) : lat.max();
  }
  const auto crit = system.critical_packet_latency();
  if (crit.count() > 0) {
    out.avg_critical = crit.mean();
    out.max_critical = crit.max();
  }
  out.packets = lat.count();
  out.transactions = system.total_transactions();
  out.iterations = system.total_iterations();
  out.total_buses = system.request_crossbar().num_buses() +
                    system.response_crossbar().num_buses();
  return out;
}

}  // namespace stx::sim
