#include "sim/session.h"

namespace stx::sim {

session::session(std::vector<std::vector<core_op>> programs, int num_targets,
                 const system_config& cfg,
                 std::vector<std::size_t> loop_starts)
    : system_(std::move(programs), num_targets, cfg, std::move(loop_starts)) {}

void session::run(cycle_t horizon) {
  system_.run(horizon);
  cached_.reset();
}

const run_metrics& session::metrics() const {
  if (!cached_) cached_ = harvest_metrics(system_);
  return *cached_;
}

run_metrics harvest_metrics(const mpsoc_system& system) {
  run_metrics out;
  const auto lat = system.packet_latency();
  if (lat.count() > 0) {
    out.avg_latency = lat.mean();
    out.max_latency = lat.max();
    out.p99_latency = lat.keeps_samples() ? lat.percentile(0.99) : lat.max();
  }
  const auto crit = system.critical_packet_latency();
  if (crit.count() > 0) {
    out.avg_critical = crit.mean();
    out.max_critical = crit.max();
  }
  out.packets = lat.count();
  out.transactions = system.total_transactions();
  out.iterations = system.total_iterations();
  out.total_buses = system.request_crossbar().num_buses() +
                    system.response_crossbar().num_buses();
  return out;
}

}  // namespace stx::sim
