#include "sim/target.h"

#include <algorithm>

#include "sim/event_queue.h"
#include "util/error.h"

namespace stx::sim {

memory_target::memory_target(int id, const target_params& params)
    : id_(id), params_(params) {
  STX_REQUIRE(params.service_latency >= 0, "negative service latency");
}

void memory_target::on_request(const packet& p, cycle_t now) {
  STX_REQUIRE(p.dest == id_, "request routed to wrong target");
  // The memory pipeline serialises requests: service begins when the
  // previous one finishes.
  const cycle_t start = std::max(now, busy_until_);
  job j;
  j.request = p;
  j.ready_at = start + params_.service_latency;
  busy_until_ = j.ready_at;
  jobs_.push_back(j);
}

cycle_t memory_target::next_wake(cycle_t earliest) const {
  if (jobs_.empty()) return no_wake;
  return std::max(jobs_.front().ready_at, earliest);
}

void memory_target::step(cycle_t now, const send_fn& send) {
  while (!jobs_.empty() && jobs_.front().ready_at <= now) {
    const auto& req = jobs_.front().request;
    packet reply;
    reply.source = id_;           // on the response crossbar we send
    reply.dest = req.source;      // back to the requesting initiator
    reply.txn = req.txn;
    reply.critical = req.critical;
    if (req.kind == packet_kind::request_read) {
      reply.kind = packet_kind::response_read;
      reply.cells = req.response_cells;
    } else {
      reply.kind = packet_kind::response_ack;
      reply.cells = 1;
    }
    send(reply);
    jobs_.pop_front();
    ++served_;
  }
}

}  // namespace stx::sim
