// Batched lockstep simulation driver (clODE-style grid integration).
//
// A sweep evaluates thousands of (design-point, seed) instances of the
// *same application shape*: identical programs and endpoint counts, but
// different crossbar configs, arbitration policies and jitter seeds.
// Running each as its own sim::session costs one object graph, one
// calendar queue and one cache-cold walk per instance. The batch driver
// instead restructures per-component simulator state (cores, buses,
// targets, arbiter/barrier boards) into a structure-of-arrays
// `batch_state` — instance-major flat vectors with per-instance base
// offsets — so one driver steps B instances in lockstep over a shared
// cycle frontier, and `run_metrics` features (latency sums/maxima, busy
// cycles, conflict counts) are harvested as observers directly in the
// batch loop, never materialising traces. The flat layout is the same
// one a GPU/OpenCL port would upload (clODE keeps observers on-device
// for exactly this reason); the host driver is the CPU backend of that
// design, thread-batched by running cohorts on the explore worker pool.
//
// Bit-identity contract: instances are mutually independent, so the
// driver only has to replicate sim::engine's per-instance event order —
// (cycle, phase, component) keys, the same wake clamping, the same
// component step semantics and RNG streams — to produce `run_metrics`
// equal (operator==, including every double) to a sim::session run of
// the same config. tests/sim/batch_equivalence_test and the testkit
// "observer-equivalence" invariant pin this the same way the retired
// polling kernel pinned the event engine.
//
// Full-trace collection (phase 1 of the design flow) stays on
// sim::session: the batch driver refuses record_traces configs, and
// explore::run_sweep falls back to sessions for trace capture and for
// odd-shaped straggler cohorts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/core.h"
#include "sim/event_queue.h"
#include "sim/system.h"
#include "sim/session.h"

namespace stx::sim {

/// Flat FIFO: a vector plus a head index. Replaces std::deque in the SoA
/// state so a drained queue holds no allocation chunks and a GPU port
/// maps it onto an index pair over a flat pool. Storage is recycled when
/// the queue drains and compacted when the dead prefix dominates.
template <typename T>
class flat_queue {
 public:
  bool empty() const { return head_ == items_.size(); }
  std::size_t size() const { return items_.size() - head_; }
  void push(const T& v) { items_.push_back(v); }
  const T& front() const { return items_[head_]; }
  void pop() {
    ++head_;
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    } else if (head_ >= 64 && head_ * 2 >= items_.size()) {
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

 private:
  std::vector<T> items_;
  std::size_t head_ = 0;
};

/// Observer features beyond run_metrics that the batch loop accumulates
/// per instance (the congestion/utilisation signals a Pareto consumer or
/// Eq. 11 check reads without traces).
struct batch_observers {
  cycle_t busy_cycles = 0;           ///< both crossbars, all buses
  std::int64_t delivered_packets = 0;
  int max_queue_depth = 0;           ///< worst port backlog (conflicts)
  std::int64_t replies_served = 0;   ///< target replies issued

  bool operator==(const batch_observers&) const = default;
};

/// The structure-of-arrays simulator state for B instances. Everything
/// is instance-major: per-core fields live at [b*C + i], per-target
/// fields at [b*T + t]; per-bus fields use per-instance base offsets
/// because designed crossbars differ in bus count across the batch.
/// POD-ish flat vectors throughout — this is the block a device port
/// would upload wholesale.
struct batch_state {
  /// One crossbar direction across every instance of the batch.
  struct direction {
    int ports = 0;                   ///< send ports per bus (C or T)
    std::vector<int> base;           ///< per instance: first global bus
    std::vector<int> count;          ///< per instance: bus count
    std::vector<std::vector<int>> binding;  ///< per instance routing
    std::vector<cycle_t> overhead;   ///< per instance
    std::vector<arbitration> policy; ///< per instance

    // Per-bus state, [global bus index].
    std::vector<std::uint8_t> transferring;
    std::vector<packet> current;
    std::vector<cycle_t> transfer_end;
    std::vector<cycle_t> recv_begin;
    std::vector<cycle_t> busy_from;
    std::vector<cycle_t> busy_cycles;
    std::vector<std::int64_t> delivered;
    std::vector<int> max_depth;
    std::vector<int> rr_last;        ///< round-robin pointer (-1 = none)
    std::vector<cycle_t> lrg_last;   ///< [gb*ports + p] last grant (-1)
    std::vector<int> backlog;        ///< non-empty port queues per bus
    /// Bit p set when port p's queue is non-empty (valid for ports <=
    /// 64, which covers every real app shape): the arbiter picks grants
    /// with bit scans instead of touching one queue header cache line
    /// per port.
    std::vector<std::uint64_t> req_mask;
    std::vector<flat_queue<packet>> queues;  ///< [gb*ports + p]

    // Per-instance latency observers (the crossbar's running_stats,
    // fed in the exact event order the session feeds them).
    std::vector<running_stats> latency;
    std::vector<running_stats> critical;

    int total_buses() const { return static_cast<int>(busy_cycles.size()); }
  };

  direction request;
  direction response;

  // Cores, [b*C + i].
  std::vector<std::uint8_t> core_state;
  std::vector<std::uint8_t> core_bphase;
  std::vector<std::uint8_t> core_pending_arrival;
  std::vector<std::uint32_t> core_pc;
  std::vector<cycle_t> core_compute_done;
  std::vector<cycle_t> core_request_issue;
  std::vector<cycle_t> core_next_poll;
  std::vector<std::int64_t> core_next_txn;
  std::vector<std::int64_t> core_wait_txn;
  std::vector<std::int64_t> core_iterations;
  std::vector<std::int64_t> core_transactions;
  std::vector<rng> core_rng;
  /// Barrier epoch counters, [b*ops_total + visit_base[i] + pc].
  std::vector<std::int64_t> core_barrier_visits;

  // Targets, [b*T + t].
  struct target_job {
    packet request;
    cycle_t ready_at = 0;
  };
  std::vector<flat_queue<target_job>> target_jobs;
  std::vector<cycle_t> target_busy_until;
  std::vector<std::int64_t> target_served;

  // Barrier boards, [b].
  std::vector<std::vector<std::pair<std::int64_t, int>>> board_counts;
  std::vector<std::int64_t> board_version;

  // Per-instance scalar config (the parts read in the hot loop).
  std::vector<core_params> cores_cfg;
  std::vector<target_params> targets_cfg;
  std::vector<std::uint8_t> keep_samples;
};

/// Steps B independent system instances of one application shape in
/// lockstep. Construction fixes the shape (programs, target count, loop
/// starts — shared across instances, unlike sessions which copy the
/// programs per run); add_instance() appends one (config, seed) point;
/// run() advances every instance to the same horizon (resumable, like
/// mpsoc_system::run). metrics(b) is bit-identical to what a
/// sim::session over the same config would report.
class batch {
 public:
  /// Same shape contract as mpsoc_system: `programs[i]` drives core i,
  /// `num_targets` receiving endpoints, optional per-core loop starts.
  batch(std::vector<std::vector<core_op>> programs, int num_targets,
        std::vector<std::size_t> loop_starts = {});

  /// Appends one instance; returns its index. The config must not ask
  /// for traces (trace capture is sim::session's job — see file
  /// comment); crossbar bindings are validated against the shape.
  /// Instances can only be added before the first run().
  int add_instance(const system_config& cfg);

  /// Advances every instance to absolute cycle `horizon` in lockstep
  /// (callable repeatedly with growing horizons); invalidates cached
  /// metrics.
  void run(cycle_t horizon);

  int size() const { return num_instances_; }
  cycle_t now() const { return now_; }
  int num_cores() const { return num_cores_; }
  int num_targets() const { return num_targets_; }

  /// Harvested metrics of instance `b` at the current horizon — the
  /// same maths as sim::harvest_metrics, fed from the batch observers.
  const run_metrics& metrics(int b) const;

  /// Extra observer features of instance `b`.
  batch_observers observers(int b) const;

  /// Event-kernel counters of instance `b` (accumulated across runs).
  const engine_stats& instance_stats(int b) const;
  /// Aggregate counters over the whole batch.
  engine_stats stats() const;

  /// The raw SoA block (introspection/tests; a device port uploads it).
  const batch_state& state() const { return st_; }

 private:
  enum : std::uint8_t {
    st_ready = 0,
    st_computing = 1,
    st_waiting = 2,
  };
  enum : std::uint8_t {
    bp_announce = 0,
    bp_poll_wait = 1,
    bp_poll_inflight = 2,
  };

  std::size_t cidx(int b, int i) const {
    return static_cast<std::size_t>(b) * static_cast<std::size_t>(num_cores_) +
           static_cast<std::size_t>(i);
  }
  std::size_t tidx(int b, int t) const {
    return static_cast<std::size_t>(b) *
               static_cast<std::size_t>(num_targets_) +
           static_cast<std::size_t>(t);
  }
  std::size_t vidx(int b, int i, std::size_t pc) const {
    return static_cast<std::size_t>(b) * ops_total_ + visit_base_[static_cast<std::size_t>(i)] + pc;
  }
  int gid(int b, int phase, int comp) const;

  void schedule(int b, int phase, int comp, cycle_t cycle);
  void seed_instance(int b);
  void process_event(int b, const event_key& key);

  // Component semantics (exact ports of core/bus/target/engine logic).
  void core_step(int b, int i, cycle_t now);
  void core_advance(int b, int i);
  void core_on_response(int b, int i, const packet& p, cycle_t now);
  cycle_t core_next_wake(int b, int i, cycle_t earliest) const;
  void send_request(int b, const packet& p);
  void send_response(int b, const packet& reply);
  void board_arrive(int b, int barrier_id, std::int64_t epoch);
  bool board_open(int b, int barrier_id, std::int64_t epoch,
                  int group_size) const;

  void bus_enqueue(batch_state::direction& d, int gb, int port,
                   const packet& p);
  int arbiter_pick(batch_state::direction& d, int gb, int inst, cycle_t now);
  bool bus_start_transfer(batch_state::direction& d, int gb, int inst,
                          cycle_t now);
  /// bus::wake: returns true when a packet completed this call, filling
  /// (out, recv_begin, recv_end) — a wake delivers at most one packet.
  bool bus_wake(batch_state::direction& d, int gb, int inst, cycle_t now,
                packet& out, cycle_t& rb, cycle_t& re);
  cycle_t bus_next_wake(const batch_state::direction& d, int gb,
                        cycle_t earliest) const;
  bool bus_has_backlog(const batch_state::direction& d, int gb) const;
  void target_step(int b, int t, cycle_t now);
  cycle_t target_next_wake(int b, int t, cycle_t earliest) const;

  run_metrics harvest(int b) const;

  // Shared shape.
  std::vector<std::vector<core_op>> programs_;
  std::vector<std::size_t> loop_starts_;
  std::vector<std::size_t> visit_base_;  ///< per core: offset into visits
  std::size_t ops_total_ = 0;            ///< sum of program lengths
  int num_cores_ = 0;
  int num_targets_ = 0;
  int num_instances_ = 0;

  batch_state st_;

  // Shared scheduling state (host-side calendar; a device port replaces
  // this with per-cycle stepping over the SoA block). Instead of one
  // binary heap per instance, every instance shares one bucket calendar
  // indexed by absolute cycle, and each component carries at most ONE
  // live wake (its `timer_`): schedule() supersedes later wakes instead
  // of enqueueing duplicates — a component's post-step re-arm recomputes
  // anything a dropped wake would have covered, so superseded and
  // duplicate wakes (no-ops by the component contract) never reach the
  // dispatch switch at all. Bucket entries pack (instance, phase,
  // component) into one sortable word; draining a cycle's bucket in
  // sorted order replays every instance's exact (cycle, phase,
  // component) event order, which is what keeps metrics bit-identical
  // to per-instance heaps and to sim::session.
  /// Calendar ring: bucket `cycle & (ring_size - 1)` holds the wakes of
  /// `cycle`, valid because no wake is scheduled more than ring_size
  /// cycles ahead without spilling to overflow_. Buckets keep their
  /// capacity across cycles and runs, so steady state allocates nothing.
  std::vector<std::vector<std::uint64_t>> buckets_;
  /// Far-future wakes (≥ ring_size ahead, e.g. long compute ops),
  /// min-heap by cycle; merged into the ring bucket when reached.
  std::vector<std::pair<cycle_t, std::uint64_t>> overflow_;
  std::vector<cycle_t> timer_;  ///< per component: pending wake cycle
  std::vector<std::uint64_t> same_cycle_;  ///< min-heap: mid-drain wakes
  cycle_t ring_head_ = 0;  ///< cycle the drain is at (ring validity base)
  std::vector<std::uint64_t> ebase_;  ///< [b*4+phase] packed entry base
  std::vector<int> comp_base_;  ///< per instance: offset into timer_
  std::vector<cycle_t> last_cycle_;  ///< per instance, stats only
  std::vector<engine_stats> stats_;
  int total_comps_ = 0;

  cycle_t now_ = 0;
  cycle_t start_ = 0;
  cycle_t horizon_ = 0;
  event_key cur_{};
  bool processing_ = false;
  int cur_instance_ = -1;

  mutable std::vector<std::optional<run_metrics>> cached_;
};

}  // namespace stx::sim
