// Single bus: the serialising resource of an STbus crossbar.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/arbiter.h"
#include "sim/packet.h"

namespace stx::sim {

/// Called when a packet's last cell reaches its destination.
/// [recv_begin, recv_end) is the span of cycles during which the packet
/// occupied the bus toward its destination — overhead plus data cells —
/// which is what the traffic trace records (Eq. 4 budgets bus capacity).
using deliver_fn =
    std::function<void(const packet&, cycle_t recv_begin, cycle_t recv_end)>;

/// One bus of a crossbar (Fig. 1): every initiator has an input port; the
/// arbiter grants one packet at a time; a granted packet occupies the bus
/// for `overhead + cells` cycles and delivers one cell per cycle after the
/// overhead (arbitration + frequency/size adapter cost).
class bus {
 public:
  /// `overhead` models the fixed per-packet cost of the arbiter and the
  /// frequency/data-width adapters between heterogeneous cores (Sec. 3.1).
  bus(int id, int num_ports, arbitration policy, cycle_t overhead);

  /// Queues a packet at input `port` (its `issue` field should carry the
  /// enqueue cycle for latency accounting).
  void enqueue(int port, const packet& p);

  /// Advances one cycle. Completes an in-flight transfer whose last cell
  /// lands this cycle (invoking `deliver`), then, if idle, arbitrates and
  /// starts the next transfer. Per-cycle entry point (the retired polling
  /// kernel's; kept for the unit tests that drive a bus cycle by cycle):
  /// the caller must invoke it every cycle (busy cycles counted eagerly).
  void step(cycle_t now, const deliver_fn& deliver);

  /// Event-kernel entry point: same decision procedure as step(), but
  /// safe to call only at the cycles next_wake() names (plus any spurious
  /// wake, which is a no-op). Busy cycles are accounted lazily — span-at-
  /// completion rather than one per call — so skipped cycles still count;
  /// sync_busy() settles the in-flight span at a run boundary. One bus
  /// instance must stick to one kernel (step xor wake) for its lifetime.
  void wake(cycle_t now, const deliver_fn& deliver);

  /// Earliest cycle >= `earliest` at which wake() does real work: the
  /// in-flight transfer's completion cycle, `earliest` itself when idle
  /// with a backlog, or no_wake when fully drained.
  cycle_t next_wake(cycle_t earliest) const;

  /// Accounts the busy span of an in-flight transfer up to `now`
  /// (exclusive) so busy_cycles() matches per-cycle stepping at a run
  /// horizon that cuts a transfer in half.
  void sync_busy(cycle_t now);

  int id() const { return id_; }
  int num_ports() const { return num_ports_; }
  bool idle() const { return !transferring_; }
  bool has_backlog() const;

  /// Cycles this bus spent transferring (including overhead cycles).
  cycle_t busy_cycles() const { return busy_cycles_; }
  /// Packets fully delivered.
  std::int64_t delivered_packets() const { return delivered_; }
  /// Maximum queue depth ever observed across ports (congestion signal).
  int max_queue_depth() const { return max_depth_; }

 private:
  int id_;
  int num_ports_;
  cycle_t overhead_;
  std::unique_ptr<arbiter> arbiter_;
  std::vector<std::deque<packet>> queues_;

  /// Arbitrates among backlogged ports and loads the winner into
  /// current_/recv_begin_/transfer_end_; false when nothing requests.
  bool start_transfer(cycle_t now);
  /// Finishes the in-flight transfer: lazy busy accounting + delivery.
  void complete(const deliver_fn& deliver);

  bool transferring_ = false;
  packet current_{};
  cycle_t transfer_end_ = 0;   ///< first cycle the bus is free again
  cycle_t recv_begin_ = 0;     ///< first cycle the destination receives
  cycle_t busy_from_ = 0;      ///< start of the unaccounted busy span

  cycle_t busy_cycles_ = 0;
  std::int64_t delivered_ = 0;
  int max_depth_ = 0;
  std::vector<bool> requesting_;  // scratch for the arbiter
};

}  // namespace stx::sim
