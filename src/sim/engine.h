// Event-driven simulation kernel.
//
// A per-cycle polling loop would visit every core, bus and target every
// cycle, even when nothing can advance — O(components) per cycle no
// matter how idle the system is (the seed repo's kernel worked that way;
// it soaked one release as the differential reference and was retired).
// The engine instead keeps a calendar queue of wake
// events: components register the next cycle at which their step function
// could change state (compute completions, transfer completions, reply
// ready times, barrier poll deadlines), external interactions (a request
// enqueued, a reply delivered, a barrier arrival) push wakes for the
// affected component, and whole idle spans are skipped in O(log n) per
// event.
//
// Determinism contract: events are processed in (cycle, phase,
// component) order, where the phases replicate the retired polling
// loop's per-cycle sweep (cores -> request buses -> targets -> response
// buses) and the component id is the same iteration order that loop
// used. Because every component's step/wake function is a no-op whenever
// nothing can advance, the engine may *add* spurious wakes freely but
// must never miss a state-changing one — the discipline under which the
// retired kernel and this one produced bit-identical traces, latency
// statistics and RNG streams for a full release (testkit invariant
// "kernel-equivalence", now retired with the polling loop; tests/sim
// still enforce segmented-run determinism).
#pragma once

#include "sim/event_queue.h"
#include "sim/system.h"

namespace stx::sim {

/// Drives one mpsoc_system through its wake handlers. Stateless across
/// runs: the queue is reseeded from component state on construction, so
/// mpsoc_system::run can instantiate a fresh engine per segment and
/// resumed runs stay bit-identical to a single longer run.
class engine {
 public:
  explicit engine(mpsoc_system& sys);

  /// Processes all events strictly before `horizon` (callable once).
  void run(cycle_t horizon);

  const engine_stats& stats() const { return stats_; }

 private:
  void seed();
  /// Queues a wake for (phase, comp). `cycle` may be no_wake (ignored) or
  /// lie in the past / at the event currently being processed — it is
  /// clamped forward so the wake lands strictly after the current event,
  /// exactly when the polling loop would next visit the component.
  void schedule(int phase, int comp, cycle_t cycle);
  /// Barrier arrival: re-wake every core (cores past their polling-loop
  /// slot this cycle see the change next cycle, the rest this cycle).
  void wake_all_cores();
  int gid(int phase, int comp) const;

  mpsoc_system& sys_;
  event_queue queue_;
  std::vector<cycle_t> last_stepped_;  ///< per gid, dedupes same-cycle wakes
  event_key current_{};
  cycle_t start_ = 0;
  cycle_t horizon_ = 0;
  bool processing_ = false;
  int num_cores_ = 0;
  int num_request_buses_ = 0;
  int num_targets_ = 0;
  int num_response_buses_ = 0;
  engine_stats stats_;
};

}  // namespace stx::sim
