#include "sim/crossbar.h"

#include <numeric>
#include <sstream>

#include "util/error.h"

namespace stx::sim {

crossbar_config crossbar_config::shared(int n) {
  crossbar_config cfg;
  cfg.num_buses = 1;
  cfg.binding.assign(static_cast<std::size_t>(n), 0);
  return cfg;
}

crossbar_config crossbar_config::full(int n) {
  crossbar_config cfg;
  cfg.num_buses = n;
  cfg.binding.resize(static_cast<std::size_t>(n));
  std::iota(cfg.binding.begin(), cfg.binding.end(), 0);
  return cfg;
}

crossbar_config crossbar_config::partial(int num_buses,
                                         std::vector<int> binding) {
  crossbar_config cfg;
  cfg.num_buses = num_buses;
  cfg.binding = std::move(binding);
  return cfg;
}

void crossbar_config::validate(int n_endpoints) const {
  STX_REQUIRE(num_buses >= 1, "crossbar needs at least one bus");
  STX_REQUIRE(static_cast<int>(binding.size()) == n_endpoints,
              "binding size must equal endpoint count");
  for (int b : binding) {
    STX_REQUIRE(b >= 0 && b < num_buses, "binding references unknown bus");
  }
  STX_REQUIRE(transfer_overhead >= 0, "negative transfer overhead");
}

std::string crossbar_config::to_string() const {
  std::ostringstream out;
  const auto n = static_cast<int>(binding.size());
  if (num_buses == 1) {
    out << "shared(" << n << " endpoints)";
  } else if (num_buses == n) {
    out << "full(" << n << " buses)";
  } else {
    out << "partial(" << num_buses << " buses: [";
    for (std::size_t i = 0; i < binding.size(); ++i) {
      if (i > 0) out << ",";
      out << binding[i];
    }
    out << "])";
  }
  return out.str();
}

crossbar::crossbar(const crossbar_config& cfg, int num_send_ports,
                   int num_recv_endpoints, bool keep_samples)
    : cfg_(cfg),
      latency_(keep_samples),
      critical_latency_(keep_samples) {
  cfg_.validate(num_recv_endpoints);
  STX_REQUIRE(num_send_ports > 0, "crossbar needs sending endpoints");
  buses_.reserve(static_cast<std::size_t>(cfg_.num_buses));
  for (int k = 0; k < cfg_.num_buses; ++k) {
    buses_.emplace_back(k, num_send_ports, cfg_.policy,
                        cfg_.transfer_overhead);
  }
}

void crossbar::enqueue(const packet& p) {
  STX_REQUIRE(p.dest >= 0 &&
                  p.dest < static_cast<int>(cfg_.binding.size()),
              "packet destination out of range");
  const int k = cfg_.binding[static_cast<std::size_t>(p.dest)];
  buses_[static_cast<std::size_t>(k)].enqueue(p.source, p);
}

void crossbar::step(cycle_t now, const deliver_fn& deliver) {
  for (auto& b : buses_) {
    b.step(now, [&](const packet& p, cycle_t rb, cycle_t re) {
      const auto lat = static_cast<double>(re - p.issue);
      latency_.add(lat);
      if (p.critical) critical_latency_.add(lat);
      deliver(p, rb, re);
    });
  }
}

void crossbar::wake_bus(int k, cycle_t now, const deliver_fn& deliver) {
  STX_REQUIRE(k >= 0 && k < num_buses(), "bus index out of range");
  buses_[static_cast<std::size_t>(k)].wake(
      now, [&](const packet& p, cycle_t rb, cycle_t re) {
        const auto lat = static_cast<double>(re - p.issue);
        latency_.add(lat);
        if (p.critical) critical_latency_.add(lat);
        deliver(p, rb, re);
      });
}

cycle_t crossbar::bus_next_wake(int k, cycle_t earliest) const {
  return bus_at(k).next_wake(earliest);
}

int crossbar::bus_for(int dest) const {
  STX_REQUIRE(dest >= 0 && dest < static_cast<int>(cfg_.binding.size()),
              "endpoint out of range");
  return cfg_.binding[static_cast<std::size_t>(dest)];
}

void crossbar::sync_busy(cycle_t now) {
  for (auto& b : buses_) b.sync_busy(now);
}

const bus& crossbar::bus_at(int k) const {
  STX_REQUIRE(k >= 0 && k < num_buses(), "bus index out of range");
  return buses_[static_cast<std::size_t>(k)];
}

double crossbar::utilization(int k, cycle_t elapsed) const {
  STX_REQUIRE(elapsed > 0, "elapsed must be positive");
  return static_cast<double>(bus_at(k).busy_cycles()) /
         static_cast<double>(elapsed);
}

bool crossbar::drained() const {
  for (const auto& b : buses_) {
    if (!b.idle() || b.has_backlog()) return false;
  }
  return true;
}

}  // namespace stx::sim
