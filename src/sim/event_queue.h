// Calendar/priority event queue for the event-driven simulation kernel.
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

#include "sim/packet.h"

namespace stx::sim {

/// Sentinel returned by component next_wake() queries: nothing can make
/// this component act until an external event (a delivery, an enqueue, a
/// barrier arrival) wakes it.
inline constexpr cycle_t no_wake = -1;

/// When a component acts within a cycle. The order replicates the legacy
/// polling loop's per-cycle sweep (cores, request buses, targets,
/// response buses), which is what makes the two kernels bit-identical:
/// an event kernel that steps the same components in the same per-cycle
/// phase order — and only ever *adds* steps that are provable no-ops —
/// cannot diverge from the polling loop.
enum sim_phase : int {
  phase_core = 0,          ///< cores may issue new requests
  phase_request_bus = 1,   ///< request crossbar moves cells to targets
  phase_target = 2,        ///< targets emit ready replies
  phase_response_bus = 3,  ///< response crossbar moves cells to cores
};

/// One scheduled wake: cycle-major, then polling-phase order, then
/// component id — the stable tie-break that keeps simultaneous wakes
/// deterministic.
struct event_key {
  cycle_t cycle = 0;
  int phase = 0;
  int component = 0;

  auto operator<=>(const event_key&) const = default;
};

/// Binary min-heap of wake events, ordered by event_key. Duplicates are
/// legal — several causes may wake the same component at the same cycle
/// (its own re-arm plus a barrier arrival, say); the engine drops them at
/// pop time, so pushing is always safe and never requires a lookup.
class event_queue {
 public:
  void push(const event_key& k);
  /// Smallest pending key; queue must be non-empty.
  const event_key& top() const;
  /// Removes and returns the smallest pending key; queue must be
  /// non-empty.
  event_key pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::int64_t total_pushed() const { return pushed_; }

 private:
  std::vector<event_key> heap_;
  std::int64_t pushed_ = 0;
};

/// Counters describing one event-driven run; exposed through
/// mpsoc_system::event_stats() so benches and tests can see how much
/// work the kernel actually skipped.
struct engine_stats {
  std::int64_t events_processed = 0;  ///< component wake handlers executed
  std::int64_t events_skipped = 0;    ///< duplicate wakes dropped at pop
  std::int64_t cycles_visited = 0;    ///< distinct cycles with any event
};

}  // namespace stx::sim
