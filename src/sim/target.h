// Memory / peripheral target model.
#pragma once

#include <deque>
#include <functional>

#include "sim/packet.h"

namespace stx::sim {

/// Service parameters of a target core (private memory, shared memory,
/// semaphore, interrupt device...).
struct target_params {
  /// Pipeline setup cost charged once per request before the reply can be
  /// issued (memory access time).
  cycle_t service_latency = 4;
};

/// A target serves one request at a time in arrival order: after
/// `service_latency` cycles it emits the reply (read data of the
/// requested size, or a 1-cell write acknowledge) into the
/// target->initiator crossbar.
class memory_target {
 public:
  memory_target(int id, const target_params& params);

  /// Called by the system when the request crossbar delivers a packet
  /// whose last cell landed at cycle `now`.
  void on_request(const packet& p, cycle_t now);

  /// Issues any reply that becomes ready at `now` through `send`.
  void step(cycle_t now, const send_fn& send);

  /// Earliest cycle >= `earliest` a queued reply becomes ready, or
  /// no_wake when no job is pending (ready times are nondecreasing, so
  /// the front job is always the next one due).
  cycle_t next_wake(cycle_t earliest) const;

  int id() const { return id_; }
  bool busy() const { return !jobs_.empty(); }
  std::int64_t served() const { return served_; }

 private:
  struct job {
    packet request;
    cycle_t ready_at = 0;  ///< cycle the reply can be issued
  };

  int id_;
  target_params params_;
  std::deque<job> jobs_;
  cycle_t busy_until_ = 0;
  std::int64_t served_ = 0;
};

}  // namespace stx::sim
