#include "gen/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.h"

namespace stx::gen::json {

bool value::as_bool() const {
  STX_REQUIRE(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(v_);
}

std::int64_t value::as_int() const {
  STX_REQUIRE(is_int(), "JSON value is not an integer");
  return std::get<std::int64_t>(v_);
}

double value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  STX_REQUIRE(is_double(), "JSON value is not a number");
  return std::get<double>(v_);
}

const std::string& value::as_string() const {
  STX_REQUIRE(is_string(), "JSON value is not a string");
  return std::get<std::string>(v_);
}

const array& value::as_array() const {
  STX_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<array>(v_);
}

const object& value::as_object() const {
  STX_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<object>(v_);
}

const value& value::at(const std::string& key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw invalid_argument_error("JSON object has no member '" + key + "'");
}

bool value::contains(const std::string& key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : std::get<object>(v_)) {
    if (k == key) return true;
  }
  return false;
}

namespace {

void write_escaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_double(std::ostringstream& out, double d) {
  STX_REQUIRE(std::isfinite(d), "JSON cannot represent non-finite numbers");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out << buf;
  // Keep the number recognisable as a double after a round-trip.
  const std::string s(buf);
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    out << ".0";
  }
}

void write_value(std::ostringstream& out, const value& v, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  if (v.is_null()) {
    out << "null";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "true" : "false");
  } else if (v.is_int()) {
    out << v.as_int();
  } else if (v.is_double()) {
    write_double(out, v.as_double());
  } else if (v.is_string()) {
    write_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out << "[]";
      return;
    }
    // Arrays of scalars stay on one line; nested structures get one
    // element per line for readable diffs.
    bool scalar = true;
    for (const auto& e : a) {
      if (e.is_array() || e.is_object()) scalar = false;
    }
    out << '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (scalar) {
        if (i > 0) out << ", ";
      } else {
        out << (i > 0 ? ",\n" : "\n") << inner;
      }
      write_value(out, a[i], depth + 1);
    }
    if (!scalar) out << '\n' << pad;
    out << ']';
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out << "{}";
      return;
    }
    out << '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      out << (i > 0 ? ",\n" : "\n") << inner;
      write_escaped(out, o[i].first);
      out << ": ";
      write_value(out, o[i].second, depth + 1);
    }
    out << '\n' << pad << '}';
  }
}

class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  value run() {
    skip_ws();
    auto v = parse_value();
    skip_ws();
    STX_REQUIRE(pos_ == text_.size(),
                "trailing characters after JSON document at offset " +
                    std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw invalid_argument_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return value(parse_string());
      case 't':
        if (consume_literal("true")) return value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  value parse_object() {
    expect('{');
    object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value(std::move(o));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      o.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return value(std::move(o));
  }

  value parse_array() {
    expect('[');
    array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value(std::move(a));
    }
    while (true) {
      skip_ws();
      a.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return value(std::move(a));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("invalid \\u escape");
            }
            // Only the BMP subset our writer emits (control characters).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else {
              fail("non-ASCII \\u escapes are not supported");
            }
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("invalid number");
    char* end = nullptr;
    if (!is_double) {
      errno = 0;
      const auto i = std::strtoll(tok.c_str(), &end, 10);
      if (end == tok.c_str() + tok.size() && errno == 0) {
        return value(static_cast<std::int64_t>(i));
      }
    }
    end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("invalid number '" + tok + "'");
    return value(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void write_value_compact(std::ostringstream& out, const value& v) {
  if (v.is_null()) {
    out << "null";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "true" : "false");
  } else if (v.is_int()) {
    out << v.as_int();
  } else if (v.is_double()) {
    write_double(out, v.as_double());
  } else if (v.is_string()) {
    write_escaped(out, v.as_string());
  } else if (v.is_array()) {
    out << '[';
    const auto& a = v.as_array();
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out << ',';
      write_value_compact(out, a[i]);
    }
    out << ']';
  } else {
    out << '{';
    const auto& o = v.as_object();
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i > 0) out << ',';
      write_escaped(out, o[i].first);
      out << ':';
      write_value_compact(out, o[i].second);
    }
    out << '}';
  }
}

}  // namespace

std::string dump(const value& v) {
  std::ostringstream out;
  write_value(out, v, 0);
  out << '\n';
  return out.str();
}

std::string dump_compact(const value& v) {
  std::ostringstream out;
  write_value_compact(out, v);
  return out.str();
}

value parse(const std::string& text) { return parser(text).run(); }

namespace {

/// Single-line rendering for diff messages: scalars verbatim, containers
/// summarised by shape so one mismatch line stays one line.
std::string summarise(const value& v) {
  if (v.is_array()) {
    return "array[" + std::to_string(v.as_array().size()) + "]";
  }
  if (v.is_object()) {
    return "object{" + std::to_string(v.as_object().size()) + " members}";
  }
  std::ostringstream out;
  write_value(out, v, 0);
  return out.str();
}

struct diff_state {
  std::vector<std::string>& out;
  std::size_t max_entries;
  std::size_t overflow = 0;

  void add(const std::string& path, const std::string& what) {
    if (out.size() < max_entries) {
      out.push_back(path + ": " + what);
    } else {
      ++overflow;
    }
  }
};

void diff_value(const value& expected, const value& actual,
                const std::string& path, diff_state& st) {
  if (expected == actual) return;
  if (expected.is_object() && actual.is_object()) {
    const auto& eo = expected.as_object();
    for (const auto& [key, ev] : eo) {
      if (!actual.contains(key)) {
        st.add(path + "." + key, "missing in actual");
        continue;
      }
      diff_value(ev, actual.at(key), path + "." + key, st);
    }
    for (const auto& [key, av] : actual.as_object()) {
      (void)av;
      if (!expected.contains(key)) {
        st.add(path + "." + key, "unexpected member in actual");
      }
    }
    return;
  }
  if (expected.is_array() && actual.is_array()) {
    const auto& ea = expected.as_array();
    const auto& aa = actual.as_array();
    const std::size_t common = std::min(ea.size(), aa.size());
    for (std::size_t i = 0; i < common; ++i) {
      diff_value(ea[i], aa[i], path + "[" + std::to_string(i) + "]", st);
    }
    for (std::size_t i = common; i < ea.size(); ++i) {
      st.add(path + "[" + std::to_string(i) + "]", "missing in actual");
    }
    for (std::size_t i = common; i < aa.size(); ++i) {
      st.add(path + "[" + std::to_string(i) + "]",
             "unexpected element in actual");
    }
    return;
  }
  st.add(path, "expected " + summarise(expected) + ", got " +
                   summarise(actual));
}

}  // namespace

std::vector<std::string> diff(const value& expected, const value& actual,
                              std::size_t max_entries) {
  std::vector<std::string> out;
  diff_state st{out, max_entries};
  diff_value(expected, actual, "$", st);
  if (st.overflow > 0) {
    out.push_back("... and " + std::to_string(st.overflow) +
                  " more differences");
  }
  return out;
}

}  // namespace stx::gen::json
