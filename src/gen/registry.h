// Backend registry: name -> gen::backend resolution plus the one-call
// generation entry point used by xbar::generate_artifacts().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gen/backend.h"

namespace stx::gen {

class registry {
 public:
  /// The process-wide registry, pre-loaded with the built-in backends
  /// (sv, dot, json, report) in that order.
  static registry& instance();

  /// An empty registry (tests compose their own).
  registry() = default;

  /// Registers `b`; rejects duplicate names.
  void add(std::unique_ptr<backend> b);

  /// Lookup by name; nullptr when absent.
  const backend* find(const std::string& name) const;

  /// Registered names in registration order.
  std::vector<std::string> names() const;

  /// Runs the backends selected by `opts.backends` (all of them when the
  /// list is empty) over `report`. Unknown names throw
  /// stx::invalid_argument_error listing what is registered.
  std::vector<artifact> generate(const xbar::flow_report& report,
                                 const generate_options& opts) const;

 private:
  std::vector<std::unique_ptr<backend>> backends_;
};

}  // namespace stx::gen
