// Graphviz DOT backend: renders the designed topology (initiators, both
// directions' buses, targets, bindings) with per-link traffic weights.
#pragma once

#include "gen/backend.h"

namespace stx::gen {

/// Registry name "dot". Layout: initiators | request buses | targets |
/// response buses as ranked clusters; edges carry the phase-1 busy-cycle
/// totals as labels and scale their pen width with relative load.
class dot_backend : public backend {
 public:
  std::string name() const override { return "dot"; }
  std::string extension() const override { return ".dot"; }
  std::string description() const override {
    return "Graphviz topology graph with traffic-weighted links";
  }
  std::string emit(const xbar::flow_report& report,
                   const std::string& basename) const override;
};

}  // namespace stx::gen
