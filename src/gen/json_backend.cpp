#include "gen/json_backend.h"

#include "gen/json.h"
#include "util/error.h"

namespace stx::gen {

namespace {

constexpr const char* kSchema = "stx-crossbar-design/v1";

using cycle_t = traffic::cycle_t;

json::value cycles_matrix(const std::vector<std::vector<cycle_t>>& m) {
  json::array rows;
  for (const auto& row : m) {
    json::array r;
    for (cycle_t v : row) r.emplace_back(static_cast<std::int64_t>(v));
    rows.emplace_back(std::move(r));
  }
  return json::value(std::move(rows));
}

std::vector<std::vector<cycle_t>> parse_cycles_matrix(const json::value& v) {
  std::vector<std::vector<cycle_t>> out;
  for (const auto& row : v.as_array()) {
    std::vector<cycle_t> r;
    for (const auto& e : row.as_array()) {
      r.push_back(static_cast<cycle_t>(e.as_int()));
    }
    out.push_back(std::move(r));
  }
  return out;
}

json::value design_to_json(const xbar::crossbar_design& d) {
  json::array binding;
  for (int b : d.binding) binding.emplace_back(b);
  return json::value(json::object{
      {"num_targets", d.num_targets},
      {"num_buses", d.num_buses},
      {"binding", std::move(binding)},
      {"max_overlap", static_cast<std::int64_t>(d.max_overlap)},
      {"binding_optimal", d.binding_optimal},
      {"num_conflicts", d.num_conflicts},
      {"params",
       json::object{
           {"window_size", static_cast<std::int64_t>(d.params.window_size)},
           {"overlap_threshold", d.params.overlap_threshold},
           {"max_targets_per_bus", d.params.max_targets_per_bus},
           {"use_overlap_conflicts", d.params.use_overlap_conflicts},
           {"separate_critical", d.params.separate_critical},
       }},
      {"telemetry",
       json::object{
           {"feasibility_nodes", d.feasibility_nodes},
           {"binding_nodes", d.binding_nodes},
           {"probes", d.probes},
       }},
  });
}

xbar::crossbar_design design_from_json(const json::value& v) {
  xbar::crossbar_design d;
  d.num_targets = static_cast<int>(v.at("num_targets").as_int());
  d.num_buses = static_cast<int>(v.at("num_buses").as_int());
  for (const auto& b : v.at("binding").as_array()) {
    d.binding.push_back(static_cast<int>(b.as_int()));
  }
  d.max_overlap = static_cast<cycle_t>(v.at("max_overlap").as_int());
  d.binding_optimal = v.at("binding_optimal").as_bool();
  d.num_conflicts = static_cast<int>(v.at("num_conflicts").as_int());
  const auto& p = v.at("params");
  d.params.window_size = static_cast<cycle_t>(p.at("window_size").as_int());
  d.params.overlap_threshold = p.at("overlap_threshold").as_double();
  d.params.max_targets_per_bus =
      static_cast<int>(p.at("max_targets_per_bus").as_int());
  d.params.use_overlap_conflicts = p.at("use_overlap_conflicts").as_bool();
  d.params.separate_critical = p.at("separate_critical").as_bool();
  const auto& t = v.at("telemetry");
  d.feasibility_nodes = t.at("feasibility_nodes").as_int();
  d.binding_nodes = t.at("binding_nodes").as_int();
  d.probes = static_cast<int>(t.at("probes").as_int());
  return d;
}

json::value metrics_to_json(const xbar::validation_metrics& m) {
  return json::value(json::object{
      {"avg_latency", m.avg_latency},
      {"max_latency", m.max_latency},
      {"p99_latency", m.p99_latency},
      {"avg_critical", m.avg_critical},
      {"max_critical", m.max_critical},
      {"packets", m.packets},
      {"transactions", m.transactions},
      {"iterations", m.iterations},
      {"total_buses", m.total_buses},
  });
}

xbar::validation_metrics metrics_from_json(const json::value& v) {
  xbar::validation_metrics m;
  m.avg_latency = v.at("avg_latency").as_double();
  m.max_latency = v.at("max_latency").as_double();
  m.p99_latency = v.at("p99_latency").as_double();
  m.avg_critical = v.at("avg_critical").as_double();
  m.max_critical = v.at("max_critical").as_double();
  m.packets = v.at("packets").as_int();
  m.transactions = v.at("transactions").as_int();
  m.iterations = v.at("iterations").as_int();
  m.total_buses = static_cast<int>(v.at("total_buses").as_int());
  return m;
}

}  // namespace

std::string json_backend::emit(const xbar::flow_report& r,
                               const std::string& /*basename*/) const {
  json::array target_names;
  for (const auto& n : r.target_names) target_names.emplace_back(n);

  const json::value doc(json::object{
      {"schema", kSchema},
      {"application",
       json::object{
           {"name", r.app_name},
           {"num_initiators", r.num_initiators},
           {"num_targets", r.num_targets},
           {"target_names", std::move(target_names)},
       }},
      {"request", design_to_json(r.request_design)},
      {"response", design_to_json(r.response_design)},
      {"metrics",
       json::object{
           {"designed", metrics_to_json(r.designed)},
           {"full", metrics_to_json(r.full)},
       }},
      {"cost",
       json::object{
           {"full_buses", r.full_buses},
           {"designed_buses", r.designed_buses},
           {"savings", r.savings()},
       }},
      {"traffic",
       json::object{
           {"request", cycles_matrix(r.request_traffic)},
           {"response", cycles_matrix(r.response_traffic)},
       }},
  });
  return json::dump(doc);
}

xbar::flow_report parse_design(const std::string& text) {
  const auto doc = json::parse(text);
  STX_REQUIRE(doc.contains("schema") &&
                  doc.at("schema").as_string() == kSchema,
              std::string("not a ") + kSchema + " document");

  xbar::flow_report r;
  const auto& app = doc.at("application");
  r.app_name = app.at("name").as_string();
  r.num_initiators = static_cast<int>(app.at("num_initiators").as_int());
  r.num_targets = static_cast<int>(app.at("num_targets").as_int());
  for (const auto& n : app.at("target_names").as_array()) {
    r.target_names.push_back(n.as_string());
  }
  r.request_design = design_from_json(doc.at("request"));
  r.response_design = design_from_json(doc.at("response"));
  r.designed = metrics_from_json(doc.at("metrics").at("designed"));
  r.full = metrics_from_json(doc.at("metrics").at("full"));
  r.full_buses = static_cast<int>(doc.at("cost").at("full_buses").as_int());
  r.designed_buses =
      static_cast<int>(doc.at("cost").at("designed_buses").as_int());
  r.request_traffic = parse_cycles_matrix(doc.at("traffic").at("request"));
  r.response_traffic = parse_cycles_matrix(doc.at("traffic").at("response"));
  return r;
}

}  // namespace stx::gen
