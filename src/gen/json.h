// Minimal JSON document model, writer and parser for the gen subsystem.
//
// Scope: exactly what the JSON backend needs — objects (insertion-ordered),
// arrays, strings, 64-bit integers, doubles, booleans, null. Doubles are
// written with 17 significant digits so every finite value round-trips
// bit-exactly through dump() + parse(). No external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace stx::gen::json {

class value;

/// Insertion-ordered key/value list (keys are unique by construction in
/// emitted documents; lookup returns the first match).
using object = std::vector<std::pair<std::string, value>>;
using array = std::vector<value>;

class value {
 public:
  value() : v_(nullptr) {}
  value(std::nullptr_t) : v_(nullptr) {}
  value(bool b) : v_(b) {}
  value(std::int64_t i) : v_(i) {}
  value(int i) : v_(static_cast<std::int64_t>(i)) {}
  value(double d) : v_(d) {}
  value(const char* s) : v_(std::string(s)) {}
  value(std::string s) : v_(std::move(s)) {}
  value(array a) : v_(std::move(a)) {}
  value(object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<array>(v_); }
  bool is_object() const { return std::holds_alternative<object>(v_); }

  /// Typed accessors; throw stx::invalid_argument_error on mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;      ///< integers only
  double as_double() const;         ///< accepts integers too
  const std::string& as_string() const;
  const array& as_array() const;
  const object& as_object() const;

  /// Object member lookup; throws when not an object or key is missing.
  const value& at(const std::string& key) const;
  /// True when this is an object holding `key`.
  bool contains(const std::string& key) const;

  bool operator==(const value& other) const { return v_ == other.v_; }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               array, object>
      v_;
};

/// Serialises `v` as pretty-printed JSON (2-space indent, trailing newline).
std::string dump(const value& v);

/// Serialises `v` on one line with no insignificant whitespace and no
/// trailing newline — the wire form of line-delimited protocols
/// (xbar-serve). Number formatting matches dump(), so
/// parse(dump_compact(v)) == v holds whenever parse(dump(v)) == v does.
std::string dump_compact(const value& v);

/// Parses one JSON document; trailing non-whitespace or malformed input
/// throws stx::invalid_argument_error with position information.
value parse(const std::string& text);

/// Structural comparison for regression diffs: walks `expected` and
/// `actual` in parallel and returns one human-readable line per
/// difference, anchored by JSON path ("$.designed.avg_latency: expected
/// 3.25, got 4.5"; "$.failures[2]: missing in actual"). Empty when the
/// documents are equal. At most `max_entries` lines are produced; a
/// final "... and N more differences" line reports the overflow.
std::vector<std::string> diff(const value& expected, const value& actual,
                              std::size_t max_entries = 40);

}  // namespace stx::gen::json
