#include "gen/rtl_backend.h"

#include <sstream>
#include <vector>

#include "util/error.h"

namespace stx::gen {

namespace {

/// Bits needed to hold ids 0..n-1 (at least 1).
int id_width(int n) {
  int w = 1;
  while ((1 << w) < n) ++w;
  return w;
}

/// Everything the per-direction module emitter needs.
struct direction_spec {
  std::string module_name;
  std::string comment;            ///< e.g. "initiator->target (request)"
  int num_src = 0;                ///< sending endpoints (every one reaches
                                  ///< every bus)
  int num_dst = 0;                ///< receiving endpoints (bound to buses)
  int num_buses = 0;
  const std::vector<int>* binding = nullptr;  ///< dst -> bus
  std::vector<std::string> dst_names;
  std::vector<traffic::cycle_t> dst_busy;     ///< busy-cycle totals (may be
                                              ///< empty)
};

void emit_arbiter(std::ostringstream& out, const std::string& base) {
  out <<
      "// Work-conserving round-robin arbiter. `ptr` is a one-hot marker of\n"
      "// the highest-priority requester; after a grant it rotates to just\n"
      "// past the grantee (STbus-style fair arbitration, paper Sec. 3).\n"
      "// The double-vector subtract picks the first request at or after\n"
      "// `ptr` without a priority chain.\n"
      "module " << base << "_rr_arbiter #(\n"
      "  parameter int unsigned N_REQ = 2\n"
      ") (\n"
      "  input  logic             clk,\n"
      "  input  logic             rst_n,\n"
      "  input  logic [N_REQ-1:0] req,\n"
      "  output logic [N_REQ-1:0] grant\n"
      ");\n"
      "  if (N_REQ == 1) begin : g_single\n"
      "    assign grant = req;\n"
      "  end else begin : g_rr\n"
      "    logic [N_REQ-1:0]   ptr;\n"
      "    logic [2*N_REQ-1:0] req_d, gnt_d;\n"
      "\n"
      "    assign req_d = {req, req};\n"
      "    assign gnt_d = req_d & ~(req_d - {{N_REQ{1'b0}}, ptr});\n"
      "    assign grant = gnt_d[N_REQ-1:0] | gnt_d[2*N_REQ-1:N_REQ];\n"
      "\n"
      "    always_ff @(posedge clk or negedge rst_n) begin\n"
      "      if (!rst_n) begin\n"
      "        ptr <= {{(N_REQ-1){1'b0}}, 1'b1};\n"
      "      end else if (|grant) begin\n"
      "        ptr <= {grant[N_REQ-2:0], grant[N_REQ-1]};\n"
      "      end\n"
      "    end\n"
      "  end\n"
      "endmodule\n";
}

void emit_direction(std::ostringstream& out, const std::string& base,
                    const direction_spec& d) {
  const int dest_w = id_width(d.num_dst);
  const int bus_w = id_width(d.num_buses);
  const auto& binding = *d.binding;

  out << "// " << d.comment << ": " << d.num_src << " senders -> "
      << d.num_dst << " receivers over " << d.num_buses
      << (d.num_buses == 1 ? " bus" : " buses") << ".\n"
      << "module " << d.module_name << " #(\n"
      << "  parameter int unsigned DATA_W = 32\n"
      << ") (\n"
      << "  input  logic              clk,\n"
      << "  input  logic              rst_n,\n"
      << "  // sending side\n"
      << "  input  logic [" << d.num_src - 1 << ":0]         src_valid,\n"
      << "  input  logic [" << dest_w - 1 << ":0]         src_dest  ["
      << d.num_src << "],\n"
      << "  input  logic [DATA_W-1:0] src_data  [" << d.num_src << "],\n"
      << "  output logic [" << d.num_src - 1 << ":0]         src_ready,\n"
      << "  // receiving side\n"
      << "  output logic [" << d.num_dst - 1 << ":0]         dst_valid,\n"
      << "  output logic [DATA_W-1:0] dst_data  [" << d.num_dst << "]\n"
      << ");\n"
      << "  localparam int unsigned NUM_SRC   = " << d.num_src << ";\n"
      << "  localparam int unsigned NUM_BUSES = " << d.num_buses << ";\n"
      << "  localparam int unsigned DEST_W    = " << dest_w << ";\n"
      << "  localparam int unsigned BUS_W     = " << bus_w << ";\n"
      << "\n";

  // Address decode: one case item per receiving endpoint (the synthesis
  // binding rendered as a lookup).
  out << "  // Address decode: destination id -> bus id (synthesis "
         "binding).\n"
      << "  function automatic logic [BUS_W-1:0] bus_of(\n"
      << "      input logic [DEST_W-1:0] dest);\n"
      << "    unique case (dest)\n";
  for (int t = 0; t < d.num_dst; ++t) {
    out << "      " << dest_w << "'d" << t << ": bus_of = " << bus_w << "'d"
        << binding[static_cast<std::size_t>(t)] << ";";
    out << "  // " << d.dst_names[static_cast<std::size_t>(t)];
    if (!d.dst_busy.empty()) {
      out << " (" << d.dst_busy[static_cast<std::size_t>(t)]
          << " busy cycles)";
    }
    out << "\n";
  }
  out << "      default: bus_of = '0;\n"
      << "    endcase\n"
      << "  endfunction\n";

  // Per-bus request gather, arbiter instance and winner mux.
  for (int k = 0; k < d.num_buses; ++k) {
    out << "\n  // ---- bus " << k << ": targets {";
    bool first = true;
    for (int t = 0; t < d.num_dst; ++t) {
      if (binding[static_cast<std::size_t>(t)] != k) continue;
      out << (first ? " " : ", ")
          << d.dst_names[static_cast<std::size_t>(t)];
      first = false;
    }
    out << " } ----\n"
        << "  logic [NUM_SRC-1:0] bus" << k << "_req;\n"
        << "  logic [NUM_SRC-1:0] bus" << k << "_grant;\n"
        << "  logic               bus" << k << "_valid;\n"
        << "  logic [DEST_W-1:0]  bus" << k << "_dest;\n"
        << "  logic [DATA_W-1:0]  bus" << k << "_data;\n"
        << "\n"
        << "  always_comb begin\n"
        << "    for (int s = 0; s < int'(NUM_SRC); s++) begin\n"
        << "      bus" << k << "_req[s] =\n"
        << "          src_valid[s] && (bus_of(src_dest[s]) == BUS_W'(" << k
        << "));\n"
        << "    end\n"
        << "  end\n"
        << "\n"
        << "  " << base << "_rr_arbiter #(.N_REQ(NUM_SRC)) u_arb_bus" << k
        << " (\n"
        << "    .clk(clk), .rst_n(rst_n), .req(bus" << k << "_req), "
        << ".grant(bus" << k << "_grant));\n"
        << "\n"
        << "  always_comb begin\n"
        << "    bus" << k << "_valid = 1'b0;\n"
        << "    bus" << k << "_dest  = '0;\n"
        << "    bus" << k << "_data  = '0;\n"
        << "    for (int s = 0; s < int'(NUM_SRC); s++) begin\n"
        << "      if (bus" << k << "_grant[s]) begin\n"
        << "        bus" << k << "_valid = 1'b1;\n"
        << "        bus" << k << "_dest  = src_dest[s];\n"
        << "        bus" << k << "_data  = src_data[s];\n"
        << "      end\n"
        << "    end\n"
        << "  end\n";
  }

  // Receiver demux: each destination listens on its bound bus only.
  out << "\n  // ---- receiver demux: each destination listens on its bound "
         "bus ----\n";
  for (int t = 0; t < d.num_dst; ++t) {
    const int k = binding[static_cast<std::size_t>(t)];
    out << "  assign dst_valid[" << t << "] = bus" << k
        << "_valid && (bus" << k << "_dest == " << dest_w << "'d" << t
        << ");  // " << d.dst_names[static_cast<std::size_t>(t)] << "\n"
        << "  assign dst_data[" << t << "]  = bus" << k << "_data;\n";
  }

  // Ready: a sender proceeds in any cycle some bus granted it.
  out << "\n  // A sender proceeds in any cycle some bus granted it.\n"
      << "  always_comb begin\n"
      << "    for (int s = 0; s < int'(NUM_SRC); s++) begin\n"
      << "      src_ready[s] =";
  for (int k = 0; k < d.num_buses; ++k) {
    out << (k == 0 ? " " : " | ") << "bus" << k << "_grant[s]";
  }
  out << ";\n"
      << "    end\n"
      << "  end\n"
      << "endmodule\n";
}

void emit_top(std::ostringstream& out, const std::string& base,
              const xbar::flow_report& r) {
  const int ni = r.num_initiators;
  const int nt = r.num_targets;
  const int req_dw = id_width(nt);
  const int resp_dw = id_width(ni);
  out << "// Top level: both crossbar directions of the designed STbus "
         "node.\n"
      << "module " << base << "_xbar #(\n"
      << "  parameter int unsigned DATA_W = 32\n"
      << ") (\n"
      << "  input  logic              clk,\n"
      << "  input  logic              rst_n,\n"
      << "  // request path: " << ni << " initiators -> " << nt
      << " targets over " << r.request_design.num_buses << " buses\n"
      << "  input  logic [" << ni - 1 << ":0]         req_valid,\n"
      << "  input  logic [" << req_dw - 1 << ":0]         req_dest  [" << ni
      << "],\n"
      << "  input  logic [DATA_W-1:0] req_data  [" << ni << "],\n"
      << "  output logic [" << ni - 1 << ":0]         req_ready,\n"
      << "  output logic [" << nt - 1 << ":0]         tgt_valid,\n"
      << "  output logic [DATA_W-1:0] tgt_data  [" << nt << "],\n"
      << "  // response path: " << nt << " targets -> " << ni
      << " initiators over " << r.response_design.num_buses << " buses\n"
      << "  input  logic [" << nt - 1 << ":0]         resp_valid,\n"
      << "  input  logic [" << resp_dw - 1 << ":0]         resp_dest  ["
      << nt << "],\n"
      << "  input  logic [DATA_W-1:0] resp_data  [" << nt << "],\n"
      << "  output logic [" << nt - 1 << ":0]         resp_ready,\n"
      << "  output logic [" << ni - 1 << ":0]         ini_valid,\n"
      << "  output logic [DATA_W-1:0] ini_data  [" << ni << "]\n"
      << ");\n"
      << "  " << base << "_req_xbar #(.DATA_W(DATA_W)) u_req_xbar (\n"
      << "    .clk(clk), .rst_n(rst_n),\n"
      << "    .src_valid(req_valid), .src_dest(req_dest), "
      << ".src_data(req_data),\n"
      << "    .src_ready(req_ready),\n"
      << "    .dst_valid(tgt_valid), .dst_data(tgt_data));\n"
      << "\n"
      << "  " << base << "_resp_xbar #(.DATA_W(DATA_W)) u_resp_xbar (\n"
      << "    .clk(clk), .rst_n(rst_n),\n"
      << "    .src_valid(resp_valid), .src_dest(resp_dest), "
      << ".src_data(resp_data),\n"
      << "    .src_ready(resp_ready),\n"
      << "    .dst_valid(ini_valid), .dst_data(ini_data));\n"
      << "endmodule\n";
}

}  // namespace

std::string rtl_backend::emit(const xbar::flow_report& r,
                              const std::string& basename) const {
  STX_REQUIRE(r.num_initiators > 0 && r.num_targets > 0,
              "RTL generation needs initiator and target counts in the "
              "flow report");
  check_design(r.request_design, r.num_targets, "request");
  check_design(r.response_design, r.num_initiators, "response");

  const std::string base = basename;

  const auto target_names = padded_target_names(r);
  std::vector<std::string> initiator_names;
  for (int i = 0; i < r.num_initiators; ++i) {
    initiator_names.push_back("core" + std::to_string(i));
  }

  std::ostringstream out;
  out << "// " << base << "_xbar.sv — application-specific STbus partial "
      << "crossbar\n"
      << "// Generated by stxbar from the synthesised design for \""
      << r.app_name << "\".\n"
      << "// Request : " << r.request_design.num_buses << " buses / "
      << r.num_targets << " targets, max bus overlap "
      << r.request_design.max_overlap << " cycles.\n"
      << "// Response: " << r.response_design.num_buses << " buses / "
      << r.num_initiators << " initiators, max bus overlap "
      << r.response_design.max_overlap << " cycles.\n"
      << "// Do not edit: regenerate with `xbargen --app=... --emit=sv`.\n"
      << "`default_nettype none\n"
      << "\n";

  emit_arbiter(out, base);

  direction_spec req;
  req.module_name = base + "_req_xbar";
  req.comment = "Request crossbar, initiator->target";
  req.num_src = r.num_initiators;
  req.num_dst = r.num_targets;
  req.num_buses = r.request_design.num_buses;
  req.binding = &r.request_design.binding;
  req.dst_names = target_names;
  if (!r.request_traffic.empty()) {
    req.dst_busy = receiver_totals(r.request_traffic, r.num_targets);
  }
  out << "\n";
  emit_direction(out, base, req);

  direction_spec resp;
  resp.module_name = base + "_resp_xbar";
  resp.comment = "Response crossbar, target->initiator";
  resp.num_src = r.num_targets;
  resp.num_dst = r.num_initiators;
  resp.num_buses = r.response_design.num_buses;
  resp.binding = &r.response_design.binding;
  resp.dst_names = initiator_names;
  if (!r.response_traffic.empty()) {
    resp.dst_busy = receiver_totals(r.response_traffic, r.num_initiators);
  }
  out << "\n";
  emit_direction(out, base, resp);

  out << "\n";
  emit_top(out, base, r);
  out << "`default_nettype wire\n";
  return out.str();
}

}  // namespace stx::gen
