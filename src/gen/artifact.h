// Generation-phase leaf types: what a backend produces and how a caller
// asks for it. Deliberately free of xbar includes so xbar/flow.h can pull
// this header without creating an include cycle with gen/backend.h.
#pragma once

#include <string>
#include <vector>

namespace stx::gen {

/// One generated deployable file, still in memory.
struct artifact {
  std::string backend;   ///< registry name of the producing backend
  std::string filename;  ///< suggested leaf filename, e.g. "mat2_xbar.sv"
  std::string content;
};

/// What to generate. The registry resolves each backend name; an unknown
/// name throws (listing what is available).
struct generate_options {
  /// Registry names to run ("sv", "dot", "json", "report"). Empty = every
  /// registered backend.
  std::vector<std::string> backends;
  /// Filename stem for the artifacts; empty = a sanitised application name.
  std::string basename;
};

/// Writes every artifact into `out_dir` (created if missing, recursively)
/// and returns the written paths in artifact order.
std::vector<std::string> write_artifacts(const std::vector<artifact>& arts,
                                         const std::string& out_dir);

/// Lower-cases `name` and replaces non-alphanumerics with '_' so it can
/// serve as a filename stem and an RTL module prefix.
std::string sanitize_basename(const std::string& name);

}  // namespace stx::gen
