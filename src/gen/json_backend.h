// JSON backend: the machine-readable design config, plus the matching
// parser so a dumped design round-trips losslessly.
#pragma once

#include "gen/backend.h"

namespace stx::gen {

/// Registry name "json". Schema "stx-crossbar-design/v1": application
/// shape and names, both directions' designs (params, binding, conflict
/// summary, solver telemetry), validation metrics, cost summary, and the
/// phase-1 link-traffic matrices. Doubles are written with 17 significant
/// digits, so parse_design(emit(report)) == report holds exactly.
class json_backend : public backend {
 public:
  std::string name() const override { return "json"; }
  std::string extension() const override { return ".json"; }
  std::string description() const override {
    return "machine-readable design config (round-trips via parse_design)";
  }
  std::string emit(const xbar::flow_report& report,
                   const std::string& basename) const override;
};

/// Parses a document produced by json_backend::emit back into a
/// flow_report. Throws stx::invalid_argument_error on malformed input or
/// an unknown schema tag.
xbar::flow_report parse_design(const std::string& text);

}  // namespace stx::gen
