#include "gen/artifact.h"

#include <cctype>
#include <filesystem>
#include <fstream>

#include "util/error.h"

namespace stx::gen {

std::vector<std::string> write_artifacts(const std::vector<artifact>& arts,
                                         const std::string& out_dir) {
  STX_REQUIRE(!out_dir.empty(), "output directory must not be empty");
  const std::filesystem::path dir(out_dir);
  std::filesystem::create_directories(dir);

  std::vector<std::string> paths;
  paths.reserve(arts.size());
  for (const auto& a : arts) {
    STX_REQUIRE(!a.filename.empty(),
                "artifact from backend '" + a.backend + "' has no filename");
    const auto path = dir / a.filename;
    std::ofstream out(path);
    STX_REQUIRE(out.good(), "cannot open " + path.string() + " for writing");
    out << a.content;
    out.close();
    STX_REQUIRE(out.good(), "failed writing " + path.string());
    paths.push_back(path.string());
  }
  return paths;
}

std::string sanitize_basename(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), 'x');
  }
  return out;
}

}  // namespace stx::gen
