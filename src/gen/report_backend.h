// Markdown backend: human-readable design summary with the paper's
// Table-1-style cost/savings numbers and the validation latencies.
#pragma once

#include "gen/backend.h"

namespace stx::gen {

/// Registry name "report".
class report_backend : public backend {
 public:
  std::string name() const override { return "report"; }
  std::string extension() const override { return ".md"; }
  std::string description() const override {
    return "Markdown design summary (cost, savings, latency tables)";
  }
  std::string emit(const xbar::flow_report& report,
                   const std::string& basename) const override;
};

}  // namespace stx::gen
