#include "gen/registry.h"

#include <sstream>

#include "gen/dot_backend.h"
#include "gen/json_backend.h"
#include "gen/report_backend.h"
#include "gen/rtl_backend.h"
#include "util/error.h"

namespace stx::gen {

artifact backend::make(const xbar::flow_report& report,
                       const std::string& basename) const {
  artifact a;
  a.backend = name();
  a.filename = basename + extension();
  a.content = emit(report, basename);
  return a;
}

std::vector<std::string> padded_target_names(const xbar::flow_report& r) {
  std::vector<std::string> names = r.target_names;
  for (int t = static_cast<int>(names.size()); t < r.num_targets; ++t) {
    names.push_back("tgt" + std::to_string(t));
  }
  return names;
}

std::vector<traffic::cycle_t> receiver_totals(
    const std::vector<std::vector<traffic::cycle_t>>& links, int n) {
  std::vector<traffic::cycle_t> out(static_cast<std::size_t>(n), 0);
  for (const auto& row : links) {
    for (std::size_t t = 0; t < row.size() && t < out.size(); ++t) {
      out[t] += row[t];
    }
  }
  return out;
}

void check_design(const xbar::crossbar_design& d, int num_dst,
                  const char* which) {
  STX_REQUIRE(d.num_targets == num_dst,
              std::string(which) + " design target count disagrees with "
                                   "the report endpoint count");
  STX_REQUIRE(d.num_buses > 0, std::string(which) + " design has no buses");
  STX_REQUIRE(static_cast<int>(d.binding.size()) == num_dst,
              std::string(which) + " binding size mismatch");
  for (int b : d.binding) {
    STX_REQUIRE(b >= 0 && b < d.num_buses,
                std::string(which) + " binding references a bad bus id");
  }
}

registry& registry::instance() {
  static registry r = [] {
    registry built;
    built.add(std::make_unique<rtl_backend>());
    built.add(std::make_unique<dot_backend>());
    built.add(std::make_unique<json_backend>());
    built.add(std::make_unique<report_backend>());
    return built;
  }();
  return r;
}

void registry::add(std::unique_ptr<backend> b) {
  STX_REQUIRE(b != nullptr, "cannot register a null backend");
  STX_REQUIRE(find(b->name()) == nullptr,
              "backend '" + b->name() + "' is already registered");
  backends_.push_back(std::move(b));
}

const backend* registry::find(const std::string& name) const {
  for (const auto& b : backends_) {
    if (b->name() == name) return b.get();
  }
  return nullptr;
}

std::vector<std::string> registry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->name());
  return out;
}

std::vector<artifact> registry::generate(const xbar::flow_report& report,
                                         const generate_options& opts) const {
  const std::string basename = opts.basename.empty()
                                   ? sanitize_basename(report.app_name)
                                   : opts.basename;

  std::vector<const backend*> selected;
  if (opts.backends.empty()) {
    for (const auto& b : backends_) selected.push_back(b.get());
  } else {
    for (const auto& name : opts.backends) {
      const auto* b = find(name);
      if (b == nullptr) {
        std::ostringstream msg;
        msg << "unknown generation backend '" << name << "' (registered:";
        for (const auto& n : names()) msg << " " << n;
        msg << ")";
        throw invalid_argument_error(msg.str());
      }
      selected.push_back(b);
    }
  }

  std::vector<artifact> out;
  out.reserve(selected.size());
  for (const auto* b : selected) out.push_back(b->make(report, basename));
  return out;
}

}  // namespace stx::gen
