// SystemVerilog backend: emits an app-specific partial-crossbar RTL
// instance (round-robin arbiter module, one crossbar module per
// direction, a wiring top) from the synthesised bindings.
#pragma once

#include "gen/backend.h"

namespace stx::gen {

/// Registry name "sv". The generated file contains, in order:
///   * `<base>_rr_arbiter`  — parameterized work-conserving round-robin
///     arbiter (rotating one-hot priority pointer);
///   * `<base>_req_xbar`    — initiator->target crossbar: one arbiter per
///     bus, address decode from the request binding, per-target demux;
///   * `<base>_resp_xbar`   — same structure for target->initiator;
///   * `<base>_xbar`        — top level instantiating both directions.
///
/// Structural invariants relied on by tests and downstream tooling: each
/// direction module instantiates exactly `num_buses` arbiters (instance
/// names `u_arb_bus<k>`), and every receiving endpoint appears exactly
/// once in the decode function and exactly once in the output demux.
class rtl_backend : public backend {
 public:
  std::string name() const override { return "sv"; }
  std::string extension() const override { return ".sv"; }
  std::string description() const override {
    return "SystemVerilog partial-crossbar RTL (arbiters + decode)";
  }
  std::string emit(const xbar::flow_report& report,
                   const std::string& basename) const override;
};

}  // namespace stx::gen
