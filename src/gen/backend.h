// Generation backend interface (the "Generation" box of the paper's
// Fig. 3 flow): a backend renders a synthesised xbar::flow_report into one
// deployable artifact. Backends are stateless; the registry owns one
// instance of each and hands out const pointers.
#pragma once

#include <string>

#include "gen/artifact.h"
#include "xbar/flow.h"

namespace stx::gen {

class backend {
 public:
  virtual ~backend() = default;

  /// Registry key and CLI spelling, e.g. "sv", "dot", "json", "report".
  virtual std::string name() const = 0;
  /// Filename extension including the dot, e.g. ".sv".
  virtual std::string extension() const = 0;
  /// One-line description for --help style listings.
  virtual std::string description() const = 0;

  /// Renders the artifact body. `basename` is the sanitised filename stem
  /// the caller chose; backends embed it wherever the artifact needs an
  /// identifier (RTL module prefix, DOT graph name) so file and content
  /// names always agree. Must be deterministic for a given input pair.
  virtual std::string emit(const xbar::flow_report& report,
                           const std::string& basename) const = 0;

  /// emit() wrapped into an artifact named `<basename><extension>`.
  artifact make(const xbar::flow_report& report,
                const std::string& basename) const;
};

// Shared helpers for backends consuming a flow_report.

/// report.target_names padded with "tgt<i>" placeholders up to
/// num_targets (reports parsed from JSON or built by hand may be short).
std::vector<std::string> padded_target_names(const xbar::flow_report& r);

/// Busy-cycle totals per receiver (column sums of a link matrix),
/// zero-filled to length `n` even when the matrix is empty or ragged.
std::vector<traffic::cycle_t> receiver_totals(
    const std::vector<std::vector<traffic::cycle_t>>& links, int n);

/// Validates one direction's design against the report's endpoint count:
/// matching target count, at least one bus, binding sized and in range.
/// Throws stx::invalid_argument_error (named with `which`) on violation —
/// backends call this first so malformed reports (e.g. hand-edited JSON
/// fed through parse_design) fail cleanly instead of indexing out of
/// bounds.
void check_design(const xbar::crossbar_design& d, int num_dst,
                  const char* which);

}  // namespace stx::gen
