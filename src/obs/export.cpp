#include "obs/export.h"

#include <algorithm>
#include <fstream>

// GCC 12's -O2 dataflow falsely flags std::variant move internals as
// maybe-uninitialized when vectors of json::value reallocate (GCC
// PR105562); silenced at the consuming TU like the other gen::json
// consumers.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "gen/json.h"
#include "util/error.h"

namespace stx::obs {

namespace {

namespace json = gen::json;

double us(std::int64_t ns) { return static_cast<double>(ns) * 1e-3; }
double ms(double seconds) { return seconds * 1e3; }

json::object args_json(const trace_event& ev) {
  json::object args;
  for (const auto& a : ev.attrs) {
    if (a.is_int) {
      args.emplace_back(a.key, a.num);
    } else {
      args.emplace_back(a.key, a.str);
    }
  }
  args.emplace_back("depth", ev.depth);
  return args;
}

void write_file(const std::string& path, const std::string& content,
                const char* what) {
  std::ofstream out(path, std::ios::binary);
  STX_REQUIRE(static_cast<bool>(out),
              std::string("cannot open ") + what + " output file '" + path +
                  "' for writing");
  out << content;
  out.flush();
  STX_REQUIRE(static_cast<bool>(out),
              std::string("failed writing ") + what + " output file '" +
                  path + "'");
}

}  // namespace

std::string render_trace_json(const std::vector<trace_event>& events) {
  // Sort by start time (then thread, then deeper-first so a parent
  // precedes its same-start children) — viewers accept any order, but a
  // time-sorted file diffs and greps sanely.
  std::vector<const trace_event*> order;
  order.reserve(events.size());
  for (const auto& ev : events) order.push_back(&ev);
  std::stable_sort(order.begin(), order.end(),
                   [](const trace_event* a, const trace_event* b) {
                     if (a->start_ns != b->start_ns) {
                       return a->start_ns < b->start_ns;
                     }
                     if (a->tid != b->tid) return a->tid < b->tid;
                     return a->depth < b->depth;
                   });
  json::array trace;
  trace.reserve(order.size());
  for (const auto* ev : order) {
    trace.push_back(json::object{
        {"name", ev->name},
        {"cat", "stx"},
        {"ph", "X"},
        {"ts", us(ev->start_ns)},
        {"dur", us(ev->dur_ns)},
        {"pid", 1},
        {"tid", ev->tid},
        {"args", args_json(*ev)},
    });
  }
  const json::value doc = json::object{
      {"traceEvents", std::move(trace)},
      {"displayTimeUnit", "ms"},
  };
  return json::dump(doc);
}

std::string render_trace_json() { return render_trace_json(trace_events()); }

std::string render_metrics_json(const metrics_snapshot& snap) {
  json::object counters;
  counters.reserve(snap.counters.size());
  for (const auto& c : snap.counters) counters.emplace_back(c.name, c.value);
  json::object gauges;
  gauges.reserve(snap.gauges.size());
  for (const auto& g : snap.gauges) gauges.emplace_back(g.name, g.value);
  json::object wall;
  wall.reserve(snap.wall.size());
  for (const auto& w : snap.wall) {
    wall.emplace_back(
        w.name,
        json::object{
            {"count", w.count},
            {"total_ms", ms(w.total_seconds)},
            {"min_ms", ms(w.min_seconds)},
            {"max_ms", ms(w.max_seconds)},
            {"mean_ms",
             w.count > 0 ? ms(w.total_seconds / static_cast<double>(w.count))
                         : 0.0},
        });
  }
  const json::value doc = json::object{
      {"schema", "stx-metrics/v1"},
      {"counters", std::move(counters)},
      {"gauges", std::move(gauges)},
      {"wall_nondeterministic", std::move(wall)},
  };
  return json::dump(doc);
}

std::string render_metrics_json() { return render_metrics_json(snapshot()); }

void write_trace_json(const std::string& path) {
  write_file(path, render_trace_json(), "trace");
}

void write_metrics_json(const std::string& path) {
  write_file(path, render_metrics_json(), "metrics");
}

}  // namespace stx::obs
