// Unified observability: hierarchical spans, a process-wide metrics
// registry, and shared wall-clock accumulators for the whole design flow.
//
// Three facilities, one discipline:
//
//  * obs::span — RAII scoped timer. Spans nest per thread (the depth is
//    recorded), carry key/value attributes, and land in a global trace
//    buffer that export.h renders as Chrome-trace-event / Perfetto JSON.
//    Ending a span also feeds its duration into the registry's wall
//    section, so a metrics snapshot answers "where does a flow spend its
//    time" even without the full trace.
//
//  * metrics registry — named monotonic counters and high-water gauges
//    (the DETERMINISTIC section: values must be bit-identical across
//    thread counts and runs, because they join the testkit oracle's
//    cross-check surface; only order-independent updates — integer sums
//    and maxima — are offered) plus wall-clock accumulators (the
//    explicitly NON-deterministic section; diffing tools and goldens
//    ignore it). Snapshots are name-sorted, so rendering is
//    deterministic too.
//
//  * stopwatch / latency_accumulator — the one definition of measured
//    wall time. The registry's wall section, the bench harnesses'
//    min-of-N / median-of-N loops (bench/bench_common.h) and the trace
//    exporter all read this clock, so BENCH_*.json and interactive
//    traces agree on what a second is.
//
// The whole subsystem is OFF by default: every entry point first reads
// one relaxed atomic flag and returns, so instrumented hot paths cost a
// predicted-not-taken branch when no --trace-out/--metrics-out consumer
// asked for telemetry. stopwatch and latency_accumulator are standalone
// value types and work regardless of the flag.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace stx::obs {

// ---------------------------------------------------------------------
// Global enablement.

/// True when telemetry collection is on (relaxed read; safe anywhere).
bool enabled();
/// Turns collection on. The first enable() after a reset() (or process
/// start) anchors the trace clock's origin.
void enable();
/// Turns collection off. Spans already open keep recording when they
/// started while enabled.
void disable();
/// Clears counters, gauges, wall accumulators and the trace buffer, and
/// re-arms the clock origin. Does not change the enabled flag.
void reset();

// ---------------------------------------------------------------------
// Wall-clock primitives (standalone: not gated on enabled()).

/// Monotonic wall-clock timer; the single clock every obs consumer and
/// bench harness reads.
class stopwatch {
 public:
  stopwatch() { restart(); }
  void restart();
  /// Seconds elapsed since construction / the last restart().
  double seconds() const;
  /// Nanoseconds elapsed (what the trace exporter stores).
  std::int64_t nanoseconds() const;

 private:
  std::int64_t start_ns_ = 0;
};

/// Sample-retaining wall-time accumulator: the one definition of
/// "minimum / median wall time over N repetitions" shared by every bench
/// harness (bench/bench_common.h) and by obs consumers that need exact
/// quantiles.
class latency_accumulator {
 public:
  latency_accumulator() : stats_(/*keep_samples=*/true) {}

  void record(double seconds) { stats_.add(seconds); }

  std::int64_t count() const { return stats_.count(); }
  double total_seconds() const { return stats_.sum(); }
  double min_seconds() const { return stats_.min(); }
  double max_seconds() const { return stats_.max(); }
  double mean_seconds() const { return stats_.mean(); }
  /// Exact median over the recorded samples; requires count() > 0.
  double median_seconds() const { return stats_.percentile(0.5); }
  double percentile_seconds(double p) const { return stats_.percentile(p); }

 private:
  running_stats stats_;
};

// ---------------------------------------------------------------------
// Spans.

/// One key/value span or trace-event attribute. Values are strings or
/// 64-bit integers (integers stay numbers in the exported JSON).
struct attr {
  std::string key;
  std::string str;        ///< value when !is_int
  std::int64_t num = 0;   ///< value when is_int
  bool is_int = false;

  attr(std::string k, std::string v)
      : key(std::move(k)), str(std::move(v)) {}
  attr(std::string k, const char* v) : key(std::move(k)), str(v) {}
  attr(std::string k, std::int64_t v)
      : key(std::move(k)), num(v), is_int(true) {}
  attr(std::string k, int v)
      : key(std::move(k)), num(v), is_int(true) {}

  bool operator==(const attr&) const = default;
};

/// RAII scoped timer. Construction (while enabled) records the start
/// time, the calling thread and the per-thread nesting depth;
/// destruction appends one complete event to the trace buffer and the
/// duration to the registry's wall section under the span's name.
/// No-op (no clock read, no allocation) when telemetry is disabled at
/// construction.
class span {
 public:
  explicit span(std::string_view name);
  span(std::string_view name, std::initializer_list<attr> attrs);
  ~span();

  span(const span&) = delete;
  span& operator=(const span&) = delete;

  /// Attaches one more attribute (e.g. a result computed inside the
  /// span). Ignored when the span is inactive.
  void set_attr(attr a);

 private:
  bool active_ = false;
  std::int64_t start_ns_ = 0;
  std::string name_;
  std::vector<attr> attrs_;
};

// ---------------------------------------------------------------------
// Metrics registry.

/// Adds `delta` to the named monotonic counter (deterministic section).
/// Integer addition is order-independent, so totals are bit-identical
/// across thread counts for the same work.
void add_counter(std::string_view name, std::int64_t delta);

/// Raises the named high-water gauge to at least `value` (deterministic
/// section; max-merge is order-independent like counter addition).
void gauge_max(std::string_view name, std::int64_t value);

/// Records one wall-time sample under `name` (NON-deterministic
/// section).
void record_wall(std::string_view name, double seconds);

struct counter_entry {
  std::string name;
  std::int64_t value = 0;

  bool operator==(const counter_entry&) const = default;
};

/// O(1) summary of one wall accumulator (the registry keeps no samples:
/// long campaigns must not grow memory per measurement).
struct wall_entry {
  std::string name;
  std::int64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Point-in-time view of the registry, every section sorted by name.
/// `counters` and `gauges` are the deterministic cross-check surface;
/// `wall` is explicitly non-deterministic (timing).
struct metrics_snapshot {
  std::vector<counter_entry> counters;
  std::vector<counter_entry> gauges;
  std::vector<wall_entry> wall;

  /// The named counter's value, 0 when absent.
  std::int64_t counter(std::string_view name) const;
  /// The named wall entry, or nullptr when absent.
  const wall_entry* find_wall(std::string_view name) const;
};

metrics_snapshot snapshot();

// ---------------------------------------------------------------------
// Trace buffer.

/// One finished span, as the exporter sees it. Timestamps are
/// nanoseconds since the clock origin (first enable() after reset()).
struct trace_event {
  std::string name;
  int tid = 0;    ///< dense per-thread index (first span wins 0)
  int depth = 0;  ///< per-thread nesting depth at the span's start
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::vector<attr> attrs;
};

/// Snapshot of the trace buffer in completion order. The buffer is
/// bounded (oldest-kept): events beyond the cap are dropped and counted
/// in the "obs.trace_dropped" counter instead of growing memory
/// unboundedly during long campaigns.
std::vector<trace_event> trace_events();

}  // namespace stx::obs
