#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>

namespace stx::obs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct wall_accum {
  std::int64_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double s) {
    if (count == 0) {
      min = max = s;
    } else {
      min = std::min(min, s);
      max = std::max(max, s);
    }
    ++count;
    total += s;
  }
};

/// All mutable global state behind one mutex. Telemetry writes are rare
/// relative to the work they measure (spans close per flow stage, counter
/// flushes happen per solve/run, never per pivot or event), so a single
/// lock is simpler than sharded state and nowhere near contention.
struct state {
  std::mutex mu;
  std::int64_t origin_ns = 0;  ///< 0 = not yet anchored
  int next_tid = 0;
  std::map<std::string, std::int64_t, std::less<>> counters;
  std::map<std::string, std::int64_t, std::less<>> gauges;
  std::map<std::string, wall_accum, std::less<>> wall;
  std::vector<trace_event> trace;
  std::int64_t trace_dropped = 0;
};

/// Bound on retained trace events; beyond it spans are counted, not
/// stored (long fuzz campaigns would otherwise grow without limit).
constexpr std::size_t kMaxTraceEvents = 1 << 20;

std::atomic<bool> g_enabled{false};

state& st() {
  static state s;
  return s;
}

/// Dense thread index, assigned on a thread's first finished span.
int local_tid() {
  thread_local int tid = -1;
  if (tid < 0) {
    std::lock_guard<std::mutex> lock(st().mu);
    tid = st().next_tid++;
  }
  return tid;
}

int& local_depth() {
  thread_local int depth = 0;
  return depth;
}

void anchor_origin_locked(state& s) {
  if (s.origin_ns == 0) s.origin_ns = now_ns();
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void enable() {
  auto& s = st();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    anchor_origin_locked(s);
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  auto& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  s.counters.clear();
  s.gauges.clear();
  s.wall.clear();
  s.trace.clear();
  s.trace_dropped = 0;
  s.origin_ns = now_ns();
}

// ---------------------------------------------------------------------
// stopwatch

void stopwatch::restart() { start_ns_ = now_ns(); }

double stopwatch::seconds() const {
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

std::int64_t stopwatch::nanoseconds() const { return now_ns() - start_ns_; }

// ---------------------------------------------------------------------
// span

span::span(std::string_view name) {
  if (!enabled()) return;
  active_ = true;
  name_ = name;
  start_ns_ = now_ns();
  ++local_depth();
}

span::span(std::string_view name, std::initializer_list<attr> attrs)
    : span(name) {
  if (active_) attrs_.assign(attrs.begin(), attrs.end());
}

void span::set_attr(attr a) {
  if (active_) attrs_.push_back(std::move(a));
}

span::~span() {
  if (!active_) return;
  const std::int64_t end_ns = now_ns();
  const int depth = --local_depth();
  const int tid = local_tid();
  // A disable() between construction and destruction drops the event;
  // the depth bookkeeping above must still run so sibling spans on this
  // thread stay consistent.
  if (!enabled()) return;
  auto& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  const double dur_s = static_cast<double>(end_ns - start_ns_) * 1e-9;
  s.wall[name_].add(dur_s);
  if (s.trace.size() >= kMaxTraceEvents) {
    ++s.trace_dropped;
    s.counters["obs.trace_dropped"] = s.trace_dropped;
    return;
  }
  trace_event ev;
  ev.name = std::move(name_);
  ev.tid = tid;
  ev.depth = depth;
  ev.start_ns = start_ns_ - s.origin_ns;
  ev.dur_ns = end_ns - start_ns_;
  ev.attrs = std::move(attrs_);
  s.trace.push_back(std::move(ev));
}

// ---------------------------------------------------------------------
// registry

void add_counter(std::string_view name, std::int64_t delta) {
  if (!enabled()) return;
  auto& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.counters.find(name);
  if (it == s.counters.end()) {
    s.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void gauge_max(std::string_view name, std::int64_t value) {
  if (!enabled()) return;
  auto& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end()) {
    s.gauges.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void record_wall(std::string_view name, double seconds) {
  if (!enabled()) return;
  auto& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.wall.find(name);
  if (it == s.wall.end()) {
    it = s.wall.emplace(std::string(name), wall_accum{}).first;
  }
  it->second.add(seconds);
}

std::int64_t metrics_snapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const wall_entry* metrics_snapshot::find_wall(std::string_view name) const {
  for (const auto& w : wall) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

metrics_snapshot snapshot() {
  auto& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  metrics_snapshot out;
  out.counters.reserve(s.counters.size());
  for (const auto& [name, value] : s.counters) {
    out.counters.push_back({name, value});
  }
  out.gauges.reserve(s.gauges.size());
  for (const auto& [name, value] : s.gauges) {
    out.gauges.push_back({name, value});
  }
  out.wall.reserve(s.wall.size());
  for (const auto& [name, acc] : s.wall) {
    out.wall.push_back({name, acc.count, acc.total, acc.min, acc.max});
  }
  return out;
}

std::vector<trace_event> trace_events() {
  auto& s = st();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.trace;
}

}  // namespace stx::obs
