// JSON exporters for the obs subsystem: Chrome-trace-event / Perfetto
// traces and `stx-metrics/v1` registry snapshots.
//
// Trace format: the Chrome trace-event JSON object form
// ({"traceEvents": [...]}) with complete ("ph":"X") events only —
// load it at https://ui.perfetto.dev or chrome://tracing. Timestamps are
// microseconds since the obs clock origin; nesting is inferred by the
// viewer from containment on each thread track, exactly how obs::span
// nests.
//
// Metrics format (`stx-metrics/v1`):
//   {
//     "schema": "stx-metrics/v1",
//     "counters": { name: int, ... },   // deterministic, name-sorted
//     "gauges":   { name: int, ... },   // deterministic, name-sorted
//     "wall_nondeterministic": {        // timing: diffs must ignore it
//       name: {count, total_ms, min_ms, max_ms, mean_ms}, ...
//     }
//   }
// The counters/gauges sections are bit-identical across runs and thread
// counts for the same work; every wall-clock field lives under the
// explicitly non-deterministic key.
#pragma once

#include <string>
#include <vector>

#include "obs/obs.h"

namespace stx::obs {

/// Renders `events` as a Chrome-trace-event JSON document.
std::string render_trace_json(const std::vector<trace_event>& events);
/// Renders the current global trace buffer.
std::string render_trace_json();

/// Renders `snap` as an `stx-metrics/v1` document.
std::string render_metrics_json(const metrics_snapshot& snap);
/// Renders the current registry contents.
std::string render_metrics_json();

/// Writes the current trace buffer / registry snapshot to `path`.
/// Throws stx::invalid_argument_error when the file cannot be written.
void write_trace_json(const std::string& path);
void write_metrics_json(const std::string& path);

}  // namespace stx::obs
