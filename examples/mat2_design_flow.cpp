// Walks the complete 4-phase design flow (paper Fig. 3) on the Mat2
// MPSoC step by step, printing what each phase produces — the
// "open the hood" companion to quickstart.cpp.
//
//   $ ./mat2_design_flow [--horizon=120000] [--window=400]
#include <cstdio>

#include "traffic/burst.h"
#include "traffic/windows.h"
#include "util/flags.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

int main(int argc, char** argv) {
  using namespace stx;
  const flag_set flags(argc, argv);

  const auto app = workloads::make_mat2();
  xbar::flow_options opts;
  opts.horizon = flags.get_int("horizon", 120'000);
  opts.synth.params.window_size = flags.get_int("window", 400);

  // ---- Phase 1: cycle-accurate simulation with full crossbars,
  // collecting the functional traffic traces.
  std::printf("phase 1: full-crossbar simulation (%lld cycles)\n",
              static_cast<long long>(opts.horizon));
  const auto traces = xbar::collect_traces(app, opts);
  std::printf("  request trace: %zu events over %d targets\n",
              traces.request.events().size(), traces.request.num_targets());
  std::printf("  response trace: %zu events over %d initiators\n",
              traces.response.events().size(),
              traces.response.num_targets());
  std::printf("  typical burst length (request side): %.0f cycles\n\n",
              traffic::typical_burst_length(traces.request, 50));

  // ---- Phase 2: window analysis + pre-processing.
  const traffic::window_analysis wa(traces.request,
                                    opts.synth.params.window_size);
  const xbar::synthesis_input input(wa, opts.synth.params);
  std::printf("phase 2: %s\n", input.to_string().c_str());

  table demand({"Target", "total busy (cy)", "peak window (cy)",
                "peak/WS"});
  for (int t = 0; t < wa.num_targets(); ++t) {
    demand.cell(app.target_names[static_cast<std::size_t>(t)])
        .cell(static_cast<std::int64_t>(wa.total_comm(t)))
        .cell(static_cast<std::int64_t>(wa.peak_comm(t)))
        .cell(static_cast<double>(wa.peak_comm(t)) /
                  static_cast<double>(wa.window_size()),
              2)
        .end_row();
  }
  std::printf("%s\n", demand.render().c_str());

  // ---- Phase 3: binary search for the minimum configuration, then the
  // overlap-minimising binding.
  const auto design = xbar::synthesize(input, opts.synth);
  std::printf("phase 3: %s\n", design.to_string().c_str());
  std::printf("  feasibility probes: %d, binding search nodes: %lld\n\n",
              design.probes, static_cast<long long>(design.binding_nodes));

  table binding({"Bus", "Targets"});
  for (int k = 0; k < design.num_buses; ++k) {
    std::string members;
    for (int t = 0; t < design.num_targets; ++t) {
      if (design.binding[static_cast<std::size_t>(t)] != k) continue;
      if (!members.empty()) members += ", ";
      members += app.target_names[static_cast<std::size_t>(t)];
    }
    binding.cell(k).cell(members).end_row();
  }
  std::printf("%s\n", binding.render().c_str());

  // ---- Phase 4: validation (the full flow also designs the response
  // side the same way).
  const auto report = xbar::run_design_flow(app, opts);
  std::printf("phase 4: validation\n");
  std::printf("  full crossbars    : avg %.2f cy, max %.0f cy (%d buses)\n",
              report.full.avg_latency, report.full.max_latency,
              report.full_buses);
  std::printf("  designed crossbars: avg %.2f cy, max %.0f cy (%d buses)\n",
              report.designed.avg_latency, report.designed.max_latency,
              report.designed_buses);
  std::printf("  component savings : %.2fx\n", report.savings());
  return 0;
}
