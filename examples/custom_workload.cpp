// Building your own application from scratch with the public API — and
// designing a crossbar for it two ways:
//   1. trace-driven (simulate, analyse, synthesise: the full flow), and
//   2. estimate-driven (no trace at all: hand the synthesiser rough
//      per-window demand estimates, as the paper notes is possible when
//      "only rough estimates of the traffic flows ... is known").
//
//   $ ./custom_workload
#include <cstdio>

#include "traffic/windows.h"
#include "util/table.h"
#include "workloads/app.h"
#include "xbar/flow.h"

namespace {

using namespace stx;

/// A small camera ISP pipeline: sensor DMA writes frames to a line
/// buffer, two filter cores transform them through scratch memories, an
/// encoder drains to the output buffer. Four initiators, five targets.
workloads::app_spec make_isp_pipeline() {
  using sim::core_op;
  workloads::app_spec app;
  app.name = "ISP";
  app.num_initiators = 4;   // sensor-dma, filter0, filter1, encoder
  app.num_targets = 5;      // line buffer, scratch0, scratch1, out, ctrl
  app.target_names = {"LineBuffer", "Scratch0", "Scratch1", "OutBuffer",
                      "CtrlRegs"};

  auto compute = [](traffic::cycle_t c) {
    core_op op;
    op.op = core_op::kind::compute;
    op.cycles = c;
    return op;
  };
  auto read = [](int target, int cells) {
    core_op op;
    op.op = core_op::kind::read;
    op.target = target;
    op.cells = cells;
    return op;
  };
  auto write = [](int target, int cells, bool critical = false) {
    core_op op;
    op.op = core_op::kind::write;
    op.target = target;
    op.cells = cells;
    op.critical = critical;
    return op;
  };

  // Sensor DMA: hard real-time line writes (critical stream).
  app.programs.push_back(
      {write(0, 32, /*critical=*/true), compute(60)});
  // Filter 0: line buffer -> scratch0.
  app.programs.push_back(
      {read(0, 32), compute(40), write(1, 32), compute(20)});
  // Filter 1: scratch0 -> scratch1.
  app.programs.push_back(
      {read(1, 32), compute(40), write(2, 32), compute(20)});
  // Encoder: scratch1 -> out buffer, occasional control register pokes.
  app.programs.push_back(
      {read(2, 32), compute(80), write(3, 16), write(4, 1), compute(30)});
  app.validate();
  return app;
}

}  // namespace

int main() {
  const auto app = make_isp_pipeline();

  // ---- Path 1: the full trace-driven flow.
  xbar::flow_options opts;
  opts.horizon = 60'000;
  opts.synth.params.window_size = 300;
  opts.synth.params.max_targets_per_bus = 3;
  const auto report = xbar::run_design_flow(app, opts);
  std::printf("trace-driven design for %s:\n", app.name.c_str());
  std::printf("  request : %s\n", report.request_design.to_string().c_str());
  std::printf("  response: %s\n", report.response_design.to_string().c_str());
  std::printf("  buses %d -> %d (%.2fx), avg latency %.2f cy (full %.2f)\n\n",
              report.full_buses, report.designed_buses, report.savings(),
              report.designed.avg_latency, report.full.avg_latency);

  // ---- Path 2: estimate-driven. Suppose no simulator existed: the
  // designer knows per-phase demand estimates (cycles busy per 300-cycle
  // window across a frame: active phase, blank phase) and which pairs
  // overlap heavily.
  const traffic::cycle_t WS = 300;
  const std::vector<std::vector<xbar::cycle_t>> comm = {
      {120, 120},  // LineBuffer: busy in both phases (DMA never stops)
      {110, 0},    // Scratch0: filter0 active phase only
      {110, 0},    // Scratch1: filter1 active phase only
      {0, 60},     // OutBuffer: encoder drains during blanking
      {2, 2},      // CtrlRegs: negligible
  };
  // Estimated total overlap (cycles) between streams; scratch0/scratch1
  // overlap heavily because the two filters run in lockstep.
  std::vector<std::vector<xbar::cycle_t>> om(5, std::vector<xbar::cycle_t>(5, 0));
  om[1][2] = om[2][1] = 90;
  om[0][1] = om[1][0] = 40;
  om[0][2] = om[2][0] = 40;
  std::vector<std::vector<bool>> conflict(5, std::vector<bool>(5, false));
  conflict[1][2] = conflict[2][1] = true;  // designer separates the filters

  xbar::design_params params;
  params.window_size = WS;
  params.max_targets_per_bus = 3;
  const xbar::synthesis_input estimates(comm, om, conflict, WS, params);
  xbar::synthesis_options so;
  so.params = params;
  const auto est_design = xbar::synthesize(estimates, so);
  std::printf("estimate-driven design (no trace):\n  %s\n",
              est_design.to_string().c_str());
  std::printf("  (LineBuffer=0, Scratch0=1, Scratch1=2, OutBuffer=3, "
              "CtrlRegs=4)\n");
  return 0;
}
