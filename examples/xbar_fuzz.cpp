// xbar-fuzz — randomized scenario fuzzing + differential verification of
// the full design flow.
//
// Campaign mode (the default): sample N random MPSoC scenarios, run the
// 4-phase flow on each, check every oracle invariant, greedily shrink any
// failure, and print a one-command reproduction for it:
//   $ ./xbar-fuzz --runs=50 --seed=1
//
// Reproduce one failure from its seed string:
//   $ ./xbar-fuzz --scenario='stxfuzz/v1 seed=42 ini=4 tgt=6 ...'
//
// Refresh the golden flow_report snapshots (see scripts/regen-goldens.sh):
//   $ ./xbar-fuzz --regen-goldens=tests/golden
//
// Exit codes: 0 all invariants held, 1 violations found, 2 bad usage.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cli_common.h"
#include "explore/disk_store.h"
#include "gen/artifact.h"
#include "testkit/fuzz.h"
#include "testkit/golden.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace stx;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xbar-fuzz [options]\n"
      "  --runs=N            scenarios to fuzz (50)\n"
      "  --seed=N            campaign master seed (1)\n"
      "  --shrink=BOOL       minimize failing scenarios (true)\n"
      "  --json=FILE         write the machine-readable campaign report\n"
      "  --scenario=STR      run ONE scenario from its seed string and exit\n"
      "  --regen-goldens=DIR rewrite the golden flow_report snapshots\n"
      "  --latency-factor=F  oracle degradation bound factor (8.0)\n"
      "  --latency-slack=F   oracle degradation bound slack cycles (50)\n"
      "  --solver-check=BOOL cross-check bus counts against the generic\n"
      "                      MILP solver (true)\n"
      "  --cache-dir=DIR     persistent phase-1 trace store shared with\n"
      "                      xbargen / xbar-sweep / xbar-serve\n"
      "  --cache-max-bytes=N evict oldest-accessed store entries over\n"
      "                      this cap at open (0 = unlimited)\n"
      "  --trace-out=FILE    write a Chrome/Perfetto trace of the run\n"
      "  --metrics-out=FILE  write an stx-metrics/v1 counter snapshot\n");
}

const std::vector<std::string> kKnownFlags = {
    "runs",           "seed",          "shrink",       "json",
    "scenario",       "regen-goldens", "latency-factor",
    "latency-slack",  "solver-check",  "help",
    "cache-dir",      "cache-max-bytes", "trace-out", "metrics-out",
};

/// The optional persistent phase-1 cache behind --cache-dir; (nullptr
/// members) when the flag is absent.
struct fuzz_cache {
  std::shared_ptr<explore::kv_store> store;
  std::unique_ptr<explore::trace_cache> cache;

  explicit fuzz_cache(const flag_set& flags) {
    const auto dir = flags.get_string("cache-dir", "");
    if (dir.empty()) return;
    store = std::make_shared<explore::disk_store>(
        dir, cli::cache_max_bytes_flag(flags));
    cache = std::make_unique<explore::trace_cache>(store);
  }
};

testkit::oracle_options oracle_options_from(const flag_set& flags) {
  testkit::oracle_options oopts;
  oopts.latency_factor = flags.get_double("latency-factor", 8.0);
  oopts.latency_slack_cycles = flags.get_double("latency-slack", 50.0);
  oopts.solver_agreement = flags.get_bool("solver-check", true);
  return oopts;
}

void print_violations(const std::vector<testkit::violation>& vs) {
  for (const auto& v : vs) {
    std::printf("  %-16s %s\n", (v.invariant + ":").c_str(),
                v.detail.c_str());
  }
}

/// --scenario mode: one scenario, full oracle, loud verdict.
int run_one_scenario(const flag_set& flags) {
  const auto s = testkit::decode(flags.get_string("scenario", ""));
  std::printf("scenario : %s\n", testkit::encode(s).c_str());
  const fuzz_cache fc(flags);
  const auto violations = testkit::run_scenario(
      s, oracle_options_from(flags), nullptr, fc.cache.get());
  if (violations.empty()) {
    std::printf("verdict  : all oracle invariants held\n");
    return 0;
  }
  std::printf("verdict  : %zu violation(s)\n", violations.size());
  print_violations(violations);
  return 1;
}

/// --regen-goldens mode: rewrite every snapshot under DIR.
int regen_goldens(const flag_set& flags) {
  const auto dir = flags.get_string("regen-goldens", "tests/golden");
  std::vector<gen::artifact> artifacts;
  for (const auto& name : testkit::golden_apps()) {
    std::printf("running golden flow: %s ...\n", name.c_str());
    const auto report = testkit::golden_report(name);
    gen::artifact art;
    art.backend = "json";
    art.filename = testkit::golden_filename(name);
    art.content = testkit::golden_json(report);
    artifacts.push_back(std::move(art));
  }
  const auto paths = gen::write_artifacts(artifacts, dir);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::printf("wrote %s (%zu bytes)\n", paths[i].c_str(),
                artifacts[i].content.size());
  }
  return 0;
}

int run_campaign(const flag_set& flags) {
  // Parse every flag up front: a malformed value is bad usage (exit 2),
  // never to be confused with a campaign that found violations (exit 1).
  testkit::fuzz_options opts;
  std::string json_path;
  try {
    opts.runs = static_cast<int>(flags.get_int("runs", 50));
    opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    opts.shrink = flags.get_bool("shrink", true);
    opts.oracle = oracle_options_from(flags);
    json_path = flags.get_string("json", "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbar-fuzz: %s\n", e.what());
    print_usage(stderr);
    return 2;
  }
  if (opts.runs <= 0) {
    std::fprintf(stderr, "xbar-fuzz: --runs must be positive\n");
    return 2;
  }
  const fuzz_cache fc(flags);
  opts.cache = fc.cache.get();

  // Campaign mode always collects the metrics registry so the v2 report
  // can break oracle cost down per invariant (the --trace-out /
  // --metrics-out handling in main may have turned collection on already).
  if (!obs::enabled()) {
    obs::reset();
    obs::enable();
  }

  const auto report = testkit::run_fuzz(
      opts, [](int k, const testkit::scenario& s, bool failed) {
        if (failed) {
          std::printf("run %3d: FAIL %s\n", k, testkit::encode(s).c_str());
        } else if ((k + 1) % 10 == 0) {
          std::printf("run %3d: ok (last: %s)\n", k, s.name().c_str());
        }
      });

  for (const auto& f : report.failures) {
    std::printf("\nFAILURE\n");
    std::printf("  sampled : %s\n", testkit::encode(f.original).c_str());
    print_violations(f.violations);
    std::printf("  shrunk  : %s (%d shrink attempts)\n",
                testkit::encode(f.shrunk).c_str(), f.shrink_attempts);
    print_violations(f.shrunk_violations);
    std::printf("  repro   : xbar-fuzz --scenario='%s'\n",
                testkit::encode(f.shrunk).c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "xbar-fuzz: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << testkit::render_json(report);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (fc.cache != nullptr) {
    const auto cs = fc.cache->stats();
    std::printf("persistent cache: %lld of %lld phase-1 collection(s) "
                "served from the store\n",
                static_cast<long long>(cs.trace_store_hits),
                static_cast<long long>(cs.trace_store_hits +
                                       cs.trace_misses));
  }

  std::printf(
      "\nxbar-fuzz: %d runs, %zu failure(s), seed %llu "
      "(%lld packets simulated on clean runs)\n",
      report.runs, report.failures.size(),
      static_cast<unsigned long long>(report.seed),
      static_cast<long long>(report.total_packets));
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Progress lines must reach redirected logs (CI) as they happen, not
  // in one block-buffered burst at exit.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const flag_set flags(argc, argv);
  if (flags.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (report_unknown_flags(flags, kKnownFlags, "xbar-fuzz") > 0) {
    print_usage(stderr);
    return 2;
  }
  try {
    const cli::obs_output obs_out(flags);
    int rc;
    if (flags.has("scenario")) {
      rc = run_one_scenario(flags);
    } else if (flags.has("regen-goldens")) {
      rc = regen_goldens(flags);
    } else {
      rc = run_campaign(flags);
    }
    // Exit 1 is "campaign found violations", still a completed run whose
    // telemetry is worth keeping; only bad usage (2) skips the write.
    if (rc != 2) obs_out.finish();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbar-fuzz: %s\n", e.what());
    return flags.has("scenario") ? 2 : 1;
  }
}
