// xbar-serve — the long-running design service daemon.
//
// Serve design requests over a local socket until a client sends the
// "shutdown" op or the process receives SIGTERM/SIGINT:
//   $ ./xbar-serve --socket=/tmp/xbar.sock --workers=4
//                  --cache-dir=/var/cache/stxbar
//
// One-shot client mode (send REQUEST, print the response line):
//   $ ./xbar-serve --socket=/tmp/xbar.sock
//       --client='{"op":"design","app":"mat2","horizon":20000}'
//
// The protocol is line-delimited JSON (see src/serve/protocol.h): ops
// design / ping / metrics / trace / shutdown. With --cache-dir, results
// are shared with every other binary pointed at the same directory
// (xbargen, xbar-sweep, xbar-fuzz): a design any of them computed is a
// warm hit here and vice versa.
//
// Shutdown semantics: SIGTERM/SIGINT triggers a graceful drain — stop
// accepting, close idle connections, give requests mid-dispatch up to
// --drain-ms to finish writing their response — then exits 0 after
// printing the final stats (and writing --metrics-out, when asked).
//
// Exit codes: 0 clean shutdown (daemon) or ok:true response (client),
// 1 runtime/protocol failure, 2 bad usage.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/json.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace stx;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xbar-serve --socket=PATH [options]\n"
      "  --socket=PATH     unix socket to listen on (or connect to,\n"
      "                    with --client); default ./xbar-serve.sock\n"
      "  --workers=N       design worker threads (2)\n"
      "  --queue=N         admission queue depth (64)\n"
      "  --cache-dir=DIR   persistent result store shared with the\n"
      "                    other CLIs (default: in-memory only)\n"
      "  --cache-max-bytes=N  evict oldest-accessed store entries over\n"
      "                    this cap (0 = unlimited)\n"
      "  --cache-sweep-ms=N   re-run the eviction sweep every N ms so a\n"
      "                    long-running daemon honors the cap between\n"
      "                    opens (0 = at open only)\n"
      "  --io-timeout-ms=N    per-connection socket read/write timeout\n"
      "                    (30000)\n"
      "  --idle-timeout-ms=N  reap connections idle this long (300000;\n"
      "                    0 = never)\n"
      "  --drain-ms=N      graceful-drain budget on SIGTERM/SIGINT:\n"
      "                    in-flight requests get this long to finish\n"
      "                    (5000)\n"
      "  --metrics-out=FILE   write the final stx-metrics/v1 snapshot\n"
      "                    here on shutdown\n"
      "  --client=REQUEST  send one JSON request line and print the\n"
      "                    response instead of serving\n"
      "  --retries=N       client mode: total attempts per request,\n"
      "                    with exponential backoff + jitter between\n"
      "                    them (1 = no retry)\n"
      "  --retry-backoff-ms=N  client mode: base backoff (50)\n");
}

const std::vector<std::string> kKnownFlags = {
    "socket",        "workers",        "queue",
    "cache-dir",     "cache-max-bytes", "cache-sweep-ms",
    "io-timeout-ms", "idle-timeout-ms", "drain-ms",
    "metrics-out",   "client",          "retries",
    "retry-backoff-ms", "help",
};

int run_client(const flag_set& flags, const std::string& socket_path,
               const std::string& line) {
  serve::retry_options retry;
  retry.attempts = static_cast<int>(flags.get_int("retries", 1));
  retry.base_backoff_ms =
      static_cast<int>(flags.get_int("retry-backoff-ms", 50));
  const auto resp = serve::request_line(socket_path, line, retry);
  std::printf("%s\n", resp.c_str());
  const auto doc = gen::json::parse(resp);
  return doc.at("ok").as_bool() ? 0 : 1;
}

/// Self-pipe for async-signal-safe shutdown: the handler writes one
/// byte; a watcher thread reads it and runs the drain on an ordinary
/// thread where locks and condition variables are allowed.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate_signal(int) {
  const char byte = 's';
  // write() is async-signal-safe; the result only matters insofar as a
  // full pipe means a signal is already pending.
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &byte, 1);
}

int run_daemon(const flag_set& flags, const std::string& socket_path) {
  serve::service::options sopts;
  sopts.workers = static_cast<int>(flags.get_int("workers", 2));
  sopts.queue_depth = static_cast<int>(flags.get_int("queue", 64));
  sopts.cache_dir = flags.get_string("cache-dir", "");
  const std::int64_t cache_cap = flags.get_int("cache-max-bytes", 0);
  const std::int64_t sweep_ms = flags.get_int("cache-sweep-ms", 0);
  if (cache_cap < 0 || sweep_ms < 0) {
    std::fprintf(stderr,
                 "xbar-serve: --cache-max-bytes/--cache-sweep-ms must be"
                 " >= 0\n");
    return 2;
  }
  sopts.cache_max_bytes = static_cast<std::uint64_t>(cache_cap);
  sopts.cache_sweep_ms = static_cast<int>(sweep_ms);

  serve::server::options wopts;
  wopts.io_timeout_ms = static_cast<int>(flags.get_int("io-timeout-ms", 30000));
  wopts.idle_timeout_ms =
      static_cast<int>(flags.get_int("idle-timeout-ms", 300000));
  const int drain_ms = static_cast<int>(flags.get_int("drain-ms", 5000));
  const auto metrics_out = flags.get_string("metrics-out", "");

  // The daemon always collects counters: the "metrics" op is the
  // service's health surface (cache hit/miss rates, queue rejections).
  obs::reset();
  obs::enable();

  serve::service svc(sopts);
  serve::server srv(svc, socket_path, wopts);
  srv.start();

  // Graceful SIGTERM/SIGINT: handler -> self-pipe -> watcher thread ->
  // drain (bounded) -> stop, which unblocks wait() below.
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "xbar-serve: cannot create signal pipe\n");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_terminate_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  bool signalled = false;
  std::thread watcher([&] {
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) == 1) {
      if (byte != 's') return;  // main asked the watcher to exit
      signalled = true;
      const bool drained = srv.drain(drain_ms);
      std::fprintf(stderr, "xbar-serve: %s drain on signal\n",
                   drained ? "clean" : "timed-out");
      srv.stop();  // unblocks wait()
      return;
    }
  });

  std::printf("xbar-serve: listening on %s (%d workers, queue %d%s%s)\n",
              srv.socket_path().c_str(), sopts.workers, sopts.queue_depth,
              sopts.cache_dir.empty() ? "" : ", cache ",
              sopts.cache_dir.c_str());
  std::fflush(stdout);
  srv.wait();
  srv.stop();
  // Unblock the watcher if no signal ever arrived, then join it.
  const char quit = 'q';
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &quit, 1);
  watcher.join();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::trunc);
    out << obs::render_metrics_json();
  }
  const auto st = svc.stats();
  std::printf(
      "xbar-serve: %s after %lld requests "
      "(%lld store hits, %lld coalesced, %lld rejected, %lld deadline-"
      "exceeded, %lld errors)\n",
      signalled ? "graceful shutdown (signal)" : "shutdown",
      static_cast<long long>(st.submitted),
      static_cast<long long>(st.store_hits),
      static_cast<long long>(st.coalesced),
      static_cast<long long>(st.rejected),
      static_cast<long long>(st.deadline_exceeded),
      static_cast<long long>(st.errors));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  if (flags.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (report_unknown_flags(flags, kKnownFlags, "xbar-serve") > 0) {
    print_usage(stderr);
    return 2;
  }
  const auto socket_path = flags.get_string("socket", "./xbar-serve.sock");
  try {
    if (flags.has("client")) {
      return run_client(flags, socket_path, flags.get_string("client", ""));
    }
    return run_daemon(flags, socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbar-serve: %s\n", e.what());
    return 1;
  }
}
