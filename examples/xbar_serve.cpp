// xbar-serve — the long-running design service daemon.
//
// Serve design requests over a local socket until a client sends the
// "shutdown" op:
//   $ ./xbar-serve --socket=/tmp/xbar.sock --workers=4
//                  --cache-dir=/var/cache/stxbar
//
// One-shot client mode (send REQUEST, print the response line):
//   $ ./xbar-serve --socket=/tmp/xbar.sock
//       --client='{"op":"design","app":"mat2","horizon":20000}'
//
// The protocol is line-delimited JSON (see src/serve/protocol.h): ops
// design / ping / metrics / trace / shutdown. With --cache-dir, results
// are shared with every other binary pointed at the same directory
// (xbargen, xbar-sweep, xbar-fuzz): a design any of them computed is a
// warm hit here and vice versa.
//
// Exit codes: 0 clean shutdown (daemon) or ok:true response (client),
// 1 runtime/protocol failure, 2 bad usage.
#include <cstdio>
#include <string>
#include <vector>

#include "gen/json.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace stx;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xbar-serve --socket=PATH [options]\n"
      "  --socket=PATH     unix socket to listen on (or connect to,\n"
      "                    with --client); default ./xbar-serve.sock\n"
      "  --workers=N       design worker threads (2)\n"
      "  --queue=N         admission queue depth (64)\n"
      "  --cache-dir=DIR   persistent result store shared with the\n"
      "                    other CLIs (default: in-memory only)\n"
      "  --cache-max-bytes=N  evict oldest-accessed store entries over\n"
      "                    this cap at open (0 = unlimited)\n"
      "  --client=REQUEST  send one JSON request line and print the\n"
      "                    response instead of serving\n");
}

const std::vector<std::string> kKnownFlags = {
    "socket", "workers", "queue", "cache-dir", "cache-max-bytes", "client",
    "help",
};

int run_client(const std::string& socket_path, const std::string& line) {
  const auto resp = serve::request_line(socket_path, line);
  std::printf("%s\n", resp.c_str());
  const auto doc = gen::json::parse(resp);
  return doc.at("ok").as_bool() ? 0 : 1;
}

int run_daemon(const flag_set& flags, const std::string& socket_path) {
  serve::service::options sopts;
  sopts.workers = static_cast<int>(flags.get_int("workers", 2));
  sopts.queue_depth = static_cast<int>(flags.get_int("queue", 64));
  sopts.cache_dir = flags.get_string("cache-dir", "");
  const std::int64_t cache_cap = flags.get_int("cache-max-bytes", 0);
  if (cache_cap < 0) {
    std::fprintf(stderr, "xbar-serve: --cache-max-bytes must be >= 0\n");
    return 2;
  }
  sopts.cache_max_bytes = static_cast<std::uint64_t>(cache_cap);

  // The daemon always collects counters: the "metrics" op is the
  // service's health surface (cache hit/miss rates, queue rejections).
  obs::reset();
  obs::enable();

  serve::service svc(sopts);
  serve::server srv(svc, socket_path);
  srv.start();
  std::printf("xbar-serve: listening on %s (%d workers, queue %d%s%s)\n",
              srv.socket_path().c_str(), sopts.workers, sopts.queue_depth,
              sopts.cache_dir.empty() ? "" : ", cache ",
              sopts.cache_dir.c_str());
  std::fflush(stdout);
  srv.wait();
  srv.stop();
  const auto st = svc.stats();
  std::printf(
      "xbar-serve: shutdown after %lld requests "
      "(%lld store hits, %lld coalesced, %lld rejected, %lld errors)\n",
      static_cast<long long>(st.submitted),
      static_cast<long long>(st.store_hits),
      static_cast<long long>(st.coalesced),
      static_cast<long long>(st.rejected),
      static_cast<long long>(st.errors));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  if (flags.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (report_unknown_flags(flags, kKnownFlags, "xbar-serve") > 0) {
    print_usage(stderr);
    return 2;
  }
  const auto socket_path = flags.get_string("socket", "./xbar-serve.sock");
  try {
    if (flags.has("client")) {
      return run_client(socket_path, flags.get_string("client", ""));
    }
    return run_daemon(flags, socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbar-serve: %s\n", e.what());
    return 1;
  }
}
