// Design-space exploration: sweeps the three methodology knobs (window
// size, overlap threshold, maxtb) on one application and prints the
// size/latency frontier, optionally as CSV for plotting.
//
//   $ ./design_space_exploration [--app=mat2] [--csv] [--horizon=120000]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/flags.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

namespace {

stx::workloads::app_spec pick_app(const std::string& name) {
  auto app = stx::workloads::make_app_by_name(name);
  if (!app.has_value()) {
    std::fprintf(stderr, "unknown --app=%s (%s)\n", name.c_str(),
                 stx::workloads::app_name_list().c_str());
    std::exit(1);
  }
  return *std::move(app);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stx;
  const flag_set flags(argc, argv);
  const auto app = pick_app(flags.get_string("app", "mat2"));

  xbar::flow_options opts;
  opts.horizon = flags.get_int("horizon", 120'000);

  // Collect once; every design point reuses the same traces.
  const auto traces = xbar::collect_traces(app, opts);
  const auto full = xbar::validate_configuration(
      app, sim::crossbar_config::full(app.num_targets),
      sim::crossbar_config::full(app.num_initiators), opts);

  table t({"window", "threshold", "maxtb", "buses(req+resp)", "avg lat",
           "avg/full", "max lat"});
  for (const traffic::cycle_t ws : {200, 400, 1000, 4000}) {
    for (const double thr : {0.10, 0.30, 0.50}) {
      for (const int maxtb : {0, 4}) {
        xbar::synthesis_options so;
        so.params.window_size = ws;
        so.params.overlap_threshold = thr;
        so.params.max_targets_per_bus = maxtb;
        const auto req = xbar::synthesize_from_trace(traces.request, so);
        const auto resp = xbar::synthesize_from_trace(traces.response, so);
        const auto m = xbar::validate_configuration(
            app, req.to_config(opts.policy, opts.transfer_overhead),
            resp.to_config(opts.policy, opts.transfer_overhead), opts);
        t.cell(static_cast<std::int64_t>(ws))
            .cell(thr, 2)
            .cell(maxtb == 0 ? std::string("off") : std::to_string(maxtb))
            .cell(std::to_string(req.num_buses) + "+" +
                  std::to_string(resp.num_buses))
            .cell(m.avg_latency, 2)
            .cell(m.avg_latency / full.avg_latency, 2)
            .cell(m.max_latency, 0)
            .end_row();
      }
    }
  }
  std::printf("design space of %s (full crossbar: avg %.2f cy, %d buses)\n\n",
              app.name.c_str(), full.avg_latency, app.total_cores());
  if (flags.has("csv")) {
    std::printf("%s", t.render_csv().c_str());
  } else {
    std::printf("%s", t.render().c_str());
  }
  return 0;
}
