// Real-time (critical) stream isolation, Sec. 7.3 of the paper.
//
// Runs the design flow on the Mat2 variant whose cores 0 and 1 carry
// real-time streams to their private memories, and shows how the
// criticality-aware pre-processing isolates the overlapping critical
// streams on separate buses — versus what happens when criticality
// handling is switched off.
//
//   $ ./realtime_streams [--horizon=120000]
#include <cstdio>

#include "traffic/windows.h"
#include "util/flags.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

int main(int argc, char** argv) {
  using namespace stx;
  const flag_set flags(argc, argv);

  const auto app = workloads::make_mat2_critical();
  xbar::flow_options opts;
  opts.horizon = flags.get_int("horizon", 120'000);
  opts.synth.params.window_size = 400;

  // With criticality handling (the default).
  const auto aware = xbar::run_design_flow(app, opts);

  // Without: critical streams are treated like any other traffic.
  auto blind_opts = opts;
  blind_opts.synth.params.separate_critical = false;
  const auto blind = xbar::run_design_flow(app, blind_opts);

  std::printf("critical streams: cores 0 and 1 -> PrivateMemory0/1\n");
  std::printf("aware design : %s\n",
              aware.request_design.to_string().c_str());
  std::printf("blind design : %s\n\n",
              blind.request_design.to_string().c_str());

  const bool separated =
      aware.request_design.binding[0] != aware.request_design.binding[1];
  std::printf("critical targets on separate buses (aware): %s\n",
              separated ? "yes" : "no (their streams never overlap)");

  // The important distinction: the aware design *guarantees* separation
  // through a conflict constraint (Eq. 7); the blind design can only
  // separate them by luck of the overlap-minimising objective.
  const auto traces = xbar::collect_traces(app, opts);
  const traffic::window_analysis wa(traces.request,
                                    opts.synth.params.window_size);
  const xbar::synthesis_input aware_in(wa, opts.synth.params);
  const xbar::synthesis_input blind_in(wa, blind_opts.synth.params);
  std::printf("conflict(PrivateMemory0, PrivateMemory1): aware=%s blind=%s\n\n",
              aware_in.conflict(0, 1) ? "enforced" : "absent",
              blind_in.conflict(0, 1) ? "enforced" : "absent");

  table t({"Design", "crit avg lat", "crit max lat", "all avg lat",
           "buses"});
  t.cell("full crossbar")
      .cell(aware.full.avg_critical, 2)
      .cell(aware.full.max_critical, 0)
      .cell(aware.full.avg_latency, 2)
      .cell(aware.full_buses)
      .end_row();
  t.cell("criticality-aware")
      .cell(aware.designed.avg_critical, 2)
      .cell(aware.designed.max_critical, 0)
      .cell(aware.designed.avg_latency, 2)
      .cell(aware.designed_buses)
      .end_row();
  t.cell("criticality-blind")
      .cell(blind.designed.avg_critical, 2)
      .cell(blind.designed.max_critical, 0)
      .cell(blind.designed.avg_latency, 2)
      .cell(blind.designed_buses)
      .end_row();
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nThe aware design keeps critical latency near the full-crossbar "
      "level\n(paper: \"almost equal to the latency of perfect "
      "communication\").\n");
  return 0;
}
