// xbar-sweep — parallel design-space exploration over the methodology's
// parameter grid.
//
//   $ ./xbar-sweep --app=mat2 --grid win=200,400,1000 --grid thr=0.1,0.3
//                  --threads=4 --out-dir=/tmp/sweep
//
// Evaluates the cross product of every --grid axis on each application,
// sharing the phase-1 full-crossbar trace per app through the trace
// cache, prints the result table with its Pareto front, and (with
// --out-dir) writes sweep.json / sweep.csv / sweep.md.
//
// Exit code 0 on success, 1 on runtime error, 2 on bad usage — including
// an empty grid or an unknown --grid key: a sweep never silently runs
// zero points.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "cli_common.h"
#include "explore/disk_store.h"
#include "explore/sweep.h"
#include "gen/artifact.h"
#include "util/error.h"
#include "util/flags.h"
#include "util/strings.h"
#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"

namespace {

using namespace stx;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xbar-sweep --app=LIST --grid KEY=V1,V2,... [options]\n"
      "  --app=LIST          comma list of apps, or 'all' "
      "(mat1|mat2|mat2-critical|fft|qsort|des|synthetic)\n"
      "  --grid KEY=V1,...   one sweep axis; repeatable; at least one "
      "required\n"
      "                      keys: win thr maxtb burstwin policy solver "
      "reqwin respwin\n"
      "  --threads=N         worker threads (default: hardware "
      "concurrency)\n"
      "  --batch=N           lockstep validation cohort size; <=1 runs "
      "one\n"
      "                      session per point (32; reports are "
      "bit-identical\n"
      "                      for every batch size and thread count)\n"
      "  --horizon=N         simulation cycles (120000)\n"
      "  --seed=N            simulator seed (1)\n"
      "  --solver-node-limit=N  branch & bound node budget per solve "
      "(> 0; default 20000000)\n"
      "  --solver-time-ms=N  solver wall-clock budget per solve in "
      "milliseconds (>= 0, 0 = unlimited; default 60000)\n"
      "  --solver-threads=N  branch & bound worker threads per solve (1;\n"
      "                      results are bit-identical at every count)\n"
      "  --solver-cuts=BOOL  root cover/clique cut layer (true)\n"
      "  --solver-portfolio=BOOL  race the specialized solver against\n"
      "                      the MILP on feasibility probes (false)\n"
      "  --validate=BOOL     per-point validation simulation (true)\n"
      "  --cache-dir=DIR     persistent phase-1 result store shared with\n"
      "                      xbargen / xbar-fuzz / xbar-serve\n"
      "  --cache-max-bytes=N evict oldest-accessed store entries over\n"
      "                      this cap at open (0 = unlimited)\n"
      "  --out-dir=DIR       write <basename>.json/.csv/.md artifacts\n"
      "  --basename=NAME     artifact filename stem (sweep)\n"
      "  --compare-serial    also time the equivalent per-point "
      "run_design_flow loop\n"
      "  --trace-out=FILE    write a Chrome/Perfetto trace of the run\n"
      "  --metrics-out=FILE  write an stx-metrics/v1 counter snapshot\n");
}

const std::vector<std::string> kKnownFlags = {
    "app",      "grid",     "threads",  "batch",  "horizon",      "seed",
    "solver-node-limit",    "solver-time-ms",
    "solver-threads", "solver-cuts", "solver-portfolio",
    "validate", "out-dir",  "basename", "compare-serial", "help",
    "cache-dir", "cache-max-bytes", "trace-out", "metrics-out",
};

/// Solver budget flags; malformed/out-of-range values exit 2 with usage.
void pick_solver_limits(const flag_set& flags, xbar::solver_options* limits) {
  try {
    cli::apply_solver_budget_flags(flags, limits);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbar-sweep: %s\n", e.what());
    print_usage(stderr);
    std::exit(2);
  }
}

int reject_unknown_flags(const flag_set& flags) {
  const int bad = report_unknown_flags(flags, kKnownFlags, "xbar-sweep");
  if (bad > 0) print_usage(stderr);
  return bad;
}

workloads::app_spec pick_app(const std::string& name) {
  auto app = workloads::make_app_by_name(name);
  if (!app.has_value()) {
    std::fprintf(stderr, "xbar-sweep: unknown app '%s' (%s)\n", name.c_str(),
                 workloads::app_name_list().c_str());
    std::exit(2);
  }
  return *std::move(app);
}

std::vector<workloads::app_spec> pick_apps(const std::string& list) {
  // "all" expands in place to the full inventory; duplicates anywhere in
  // the expanded list are a usage error (app names key the trace cache).
  std::vector<std::string> names;
  for (const auto& item : split_list(list)) {
    if (item == "all") {
      names.insert(names.end(), workloads::app_names().begin(),
                   workloads::app_names().end());
    } else {
      names.push_back(item);
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "xbar-sweep: --app list is empty\n");
    std::exit(2);
  }
  std::vector<workloads::app_spec> apps;
  for (const auto& name : names) {
    if (std::count(names.begin(), names.end(), name) > 1) {
      std::fprintf(stderr, "xbar-sweep: duplicate app '%s' in --app list\n",
                   name.c_str());
      std::exit(2);
    }
    apps.push_back(pick_app(name));
  }
  return apps;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  if (flags.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (reject_unknown_flags(flags) > 0) return 2;

  explore::sweep_spec spec;
  // Grid validation happens before anything expensive: an unknown key or
  // an empty axis is a usage error, mirroring the unknown-flag rejection.
  try {
    spec.grid = explore::parse_grid(flags.get_list("grid"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbar-sweep: %s\n", e.what());
    print_usage(stderr);
    return 2;
  }
  if (spec.grid.empty()) {
    std::fprintf(stderr,
                 "xbar-sweep: empty grid — pass at least one "
                 "--grid KEY=V1,V2,... axis\n");
    print_usage(stderr);
    return 2;
  }

  try {
    const cli::obs_output obs_out(flags);
    spec.apps = pick_apps(flags.get_string("app", "mat2"));
    spec.horizon = flags.get_int("horizon", 120'000);
    spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    pick_solver_limits(flags, &spec.synth_base.limits);
    spec.validate = flags.get_bool("validate", true);
    const int hw =
        std::max(1u, std::thread::hardware_concurrency());
    spec.threads = static_cast<int>(flags.get_int("threads", hw));
    spec.batch_size = static_cast<int>(flags.get_int("batch", 32));

    const auto points = explore::sweep_points(spec);
    std::printf(
        "sweeping %zu point(s) x %zu app(s) on %d thread(s), "
        "validation cohorts of %d\n",
        points.size(), spec.apps.size(), spec.threads,
        std::max(spec.batch_size, 1));

    // With --cache-dir the phase-1 cache is backed by the persistent
    // store: a re-run (or any other CLI on the same directory) serves
    // traces and references without re-simulating.
    std::shared_ptr<explore::kv_store> store;
    const auto cache_dir = flags.get_string("cache-dir", "");
    if (!cache_dir.empty()) {
      store = std::make_shared<explore::disk_store>(
          cache_dir, cli::cache_max_bytes_flag(flags));
    }
    explore::trace_cache cache(store);

    const auto t0 = std::chrono::steady_clock::now();
    const auto report = explore::run_sweep(spec, cache);
    const double sweep_sec = seconds_since(t0);

    std::printf("%s", explore::render_markdown(report).c_str());
    std::printf("\nsweep wall-clock: %.2fs (%lld phase-1 + %lld reference "
                "simulations for %zu evaluations)\n",
                sweep_sec, static_cast<long long>(report.phase1_simulations),
                static_cast<long long>(report.full_simulations),
                report.results.size());
    if (store != nullptr) {
      const auto cs = cache.stats();
      std::printf("persistent cache: %lld trace + %lld reference load(s) "
                  "served from %s\n",
                  static_cast<long long>(cs.trace_store_hits),
                  static_cast<long long>(cs.full_store_hits),
                  cache_dir.c_str());
    }

    if (flags.has("compare-serial")) {
      // The fair baseline does exactly what the sweep does per point —
      // including skipping phase 4 under --validate=false — just without
      // the trace cache or threads.
      const auto t1 = std::chrono::steady_clock::now();
      for (const auto& app : spec.apps) {
        for (const auto& p : points) {
          const auto opts = explore::options_for(spec, p);
          const auto traces = xbar::collect_traces(app, opts);
          xbar::flow_stage_inputs stages;
          if (!spec.validate) stages.mode = xbar::validation_mode::skip;
          (void)xbar::design_from_traces(app, traces, opts, stages);
        }
      }
      const double serial_sec = seconds_since(t1);
      std::printf("serial per-point design-flow loop: %.2fs "
                  "(speedup %.2fx)\n",
                  serial_sec, serial_sec / sweep_sec);
    }

    const auto out_dir = flags.get_string("out-dir", "");
    if (!out_dir.empty()) {
      const auto arts = explore::render_artifacts(
          report, flags.get_string("basename", "sweep"));
      const auto paths = gen::write_artifacts(arts, out_dir);
      for (std::size_t i = 0; i < paths.size(); ++i) {
        std::printf("emitted: %-9s -> %s (%zu bytes)\n",
                    arts[i].backend.c_str(), paths[i].c_str(),
                    arts[i].content.size());
      }
    }
    obs_out.finish();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbar-sweep: %s\n", e.what());
    return 1;
  }
}
