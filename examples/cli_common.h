// Helpers shared by the xbargen / xbar-sweep CLI drivers.
#pragma once

#include <cstdint>

#include "util/error.h"
#include "util/flags.h"
#include "xbar/bb_solver.h"

namespace stx::cli {

/// Parses the solver search budgets (--solver-node-limit,
/// --solver-time-ms) into `limits`. Throws invalid_argument_error on a
/// malformed or out-of-range value (node limit < 1, negative time) —
/// each driver catches, prints its usage and exits 2: a typo'd budget
/// must never silently run with the default. One definition serves both
/// CLIs so the validation contract cannot drift between them.
inline void apply_solver_budget_flags(const flag_set& flags,
                                      xbar::solver_options* limits) {
  const std::int64_t nodes =
      flags.get_int("solver-node-limit", limits->max_nodes);
  if (nodes < 1) {
    throw invalid_argument_error("--solver-node-limit must be >= 1");
  }
  const std::int64_t time_ms = flags.get_int(
      "solver-time-ms",
      static_cast<std::int64_t>(limits->time_limit_sec * 1000.0));
  if (time_ms < 0) {
    throw invalid_argument_error("--solver-time-ms must be >= 0");
  }
  limits->max_nodes = nodes;
  limits->time_limit_sec = static_cast<double>(time_ms) / 1000.0;
}

}  // namespace stx::cli
