// Helpers shared by the xbargen / xbar-sweep CLI drivers.
#pragma once

#include <cstdint>
#include <string>

#include "obs/export.h"
#include "obs/obs.h"
#include "util/error.h"
#include "util/flags.h"
#include "xbar/bb_solver.h"

namespace stx::cli {

/// Parses the solver knobs (--solver-node-limit, --solver-time-ms,
/// --solver-threads, --solver-cuts, --solver-portfolio) into `limits`.
/// Throws invalid_argument_error on a malformed or out-of-range value
/// (node limit < 1, negative time, threads < 1) — each driver catches,
/// prints its usage and exits 2: a typo'd budget must never silently run
/// with the default. One definition serves all the CLIs so the
/// validation contract cannot drift between them.
inline void apply_solver_budget_flags(const flag_set& flags,
                                      xbar::solver_options* limits) {
  const std::int64_t nodes =
      flags.get_int("solver-node-limit", limits->max_nodes);
  if (nodes < 1) {
    throw invalid_argument_error("--solver-node-limit must be >= 1");
  }
  const std::int64_t time_ms = flags.get_int(
      "solver-time-ms",
      static_cast<std::int64_t>(limits->time_limit_sec * 1000.0));
  if (time_ms < 0) {
    throw invalid_argument_error("--solver-time-ms must be >= 0");
  }
  const std::int64_t threads =
      flags.get_int("solver-threads", limits->threads);
  if (threads < 1) {
    throw invalid_argument_error("--solver-threads must be >= 1");
  }
  limits->max_nodes = nodes;
  limits->time_limit_sec = static_cast<double>(time_ms) / 1000.0;
  limits->threads = static_cast<int>(threads);
  limits->cuts = flags.get_bool("solver-cuts", limits->cuts);
  limits->portfolio = flags.get_bool("solver-portfolio", limits->portfolio);
}

/// Parses --cache-max-bytes (the disk_store eviction cap; 0 = unlimited)
/// with the same reject-don't-default contract as the solver knobs.
inline std::uint64_t cache_max_bytes_flag(const flag_set& flags) {
  const std::int64_t cap = flags.get_int("cache-max-bytes", 0);
  if (cap < 0) {
    throw invalid_argument_error("--cache-max-bytes must be >= 0");
  }
  return static_cast<std::uint64_t>(cap);
}

/// The --trace-out / --metrics-out contract shared by all three CLIs:
/// construct after flag parsing (telemetry collection turns on only when
/// at least one output was requested — otherwise every obs entry point
/// stays a no-op), call finish() after the work completes to write the
/// requested files. Write failures throw invalid_argument_error, which
/// the drivers' existing catch blocks turn into exit 1.
class obs_output {
 public:
  explicit obs_output(const flag_set& flags)
      : trace_path_(flags.get_string("trace-out", "")),
        metrics_path_(flags.get_string("metrics-out", "")) {
    if (!trace_path_.empty() || !metrics_path_.empty()) {
      obs::reset();
      obs::enable();
    }
  }

  void finish() const {
    if (!trace_path_.empty()) obs::write_trace_json(trace_path_);
    if (!metrics_path_.empty()) obs::write_metrics_json(metrics_path_);
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace stx::cli
