// xbargen — command-line driver for the full design flow.
//
// Design from a built-in application model:
//   $ ./xbargen --app=mat2 --window=400 --threshold=0.3 --maxtb=4
//
// Design and generate deployable artifacts (phase 5):
//   $ ./xbargen --app=mat2 --emit=sv,dot,json,report --out-dir=/tmp/mat2
//
// Or from a previously captured trace file (one crossbar direction):
//   $ ./xbargen --app=mat2 --save-traces=/tmp/mat2   # writes .req/.resp
//   $ ./xbargen --trace=/tmp/mat2.req --window=400
//
// Prints the designed configuration and (for --app runs) the validated
// latency against the full crossbar. Exit code 0 on success, 2 on bad
// usage (unknown flag, unknown app, malformed --emit list).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"

#include "cli_common.h"
#include "explore/disk_store.h"
#include "explore/sweep.h"
#include "gen/registry.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/strings.h"
#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

namespace {

using namespace stx;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xbargen [--app=NAME | --trace=FILE] [options]\n"
      "  --app=NAME          built-in app "
      "(mat1|mat2|mat2-critical|fft|qsort|des|synthetic)\n"
      "  --trace=FILE        design one direction from a saved trace\n"
      "  --save-traces=PATH  only collect traces, write PATH.req/.resp\n"
      "  --emit=LIST         comma-separated artifact backends "
      "(sv|dot|json|report|all)\n"
      "  --out-dir=DIR       where --emit writes artifacts (default .)\n"
      "  --window=N          analysis window size in cycles (400)\n"
      "  --threshold=F       overlap threshold fraction (0.30)\n"
      "  --maxtb=N           max targets per bus, 0=off (4)\n"
      "  --conflicts=BOOL    overlap-conflict pre-processing (true)\n"
      "  --critical=BOOL     separate critical streams (true)\n"
      "  --solver=KIND       specialized|milp (specialized)\n"
      "  --solver-node-limit=N  branch & bound node budget per solve "
      "(> 0; default 20000000)\n"
      "  --solver-time-ms=N  solver wall-clock budget per solve in "
      "milliseconds (>= 0, 0 = unlimited; default 60000)\n"
      "  --solver-threads=N  branch & bound worker threads (1; results\n"
      "                      are bit-identical at every thread count)\n"
      "  --solver-cuts=BOOL  root cover/clique cut layer (true)\n"
      "  --solver-portfolio=BOOL  race the specialized solver against\n"
      "                      the MILP on feasibility probes (false)\n"
      "  --horizon=N         simulation cycles (120000)\n"
      "  --cache-dir=DIR     persistent result store: a design already\n"
      "                      computed under DIR (by any CLI or the\n"
      "                      xbar-serve daemon) is reused without\n"
      "                      re-running simulation or the solver\n"
      "  --cache-max-bytes=N evict oldest-accessed store entries over\n"
      "                      this cap at open (0 = unlimited)\n"
      "  --grid KEY=V1,...   sweep an axis instead of one design point "
      "(repeatable;\n"
      "                      keys: win thr maxtb burstwin policy solver "
      "reqwin respwin);\n"
      "                      unswept axes take their values from the "
      "flags above\n"
      "  --threads=N         sweep worker threads (hardware "
      "concurrency)\n"
      "  --trace-out=FILE    write a Chrome/Perfetto trace of the run\n"
      "  --metrics-out=FILE  write an stx-metrics/v1 counter snapshot\n");
}

/// Every flag xbargen understands; anything else is an error (exit 2),
/// never silently ignored.
const std::vector<std::string> kKnownFlags = {
    "app",      "trace",    "save-traces", "emit",     "out-dir",
    "window",   "threshold", "maxtb",      "conflicts", "critical",
    "solver",   "solver-node-limit", "solver-time-ms",
    "solver-threads", "solver-cuts", "solver-portfolio",
    "horizon",  "grid",     "threads",    "help",
    "cache-dir", "cache-max-bytes", "trace-out", "metrics-out",
};

/// Solver budget flags; malformed/out-of-range values exit 2 with usage.
void pick_solver_limits(const flag_set& flags, xbar::solver_options* limits) {
  try {
    cli::apply_solver_budget_flags(flags, limits);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbargen: %s\n", e.what());
    print_usage(stderr);
    std::exit(2);
  }
}

int reject_unknown_flags(const flag_set& flags) {
  const int bad = report_unknown_flags(flags, kKnownFlags, "xbargen");
  if (bad > 0) print_usage(stderr);
  return bad;
}

workloads::app_spec pick_app(const std::string& name) {
  auto app = workloads::make_app_by_name(name);
  if (!app.has_value()) {
    std::fprintf(stderr, "xbargen: unknown --app=%s (%s)\n", name.c_str(),
                 workloads::app_name_list().c_str());
    std::exit(2);
  }
  return *std::move(app);
}

/// Parses --emit into backend registry names; "all" (or an empty item
/// list) selects every registered backend. Unknown names exit 2.
std::vector<std::string> parse_emit_list(const std::string& list) {
  std::vector<std::string> out;
  for (const auto& item : split_list(list)) {
    if (item == "all") {
      return gen::registry::instance().names();
    }
    if (gen::registry::instance().find(item) == nullptr) {
      std::fprintf(stderr, "xbargen: unknown --emit backend '%s'\n",
                   item.c_str());
      std::fprintf(stderr, "  registered:");
      for (const auto& n : gen::registry::instance().names()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    out.push_back(item);
  }
  if (out.empty()) return gen::registry::instance().names();
  return out;
}

xbar::synthesis_options synth_options(const flag_set& flags) {
  xbar::synthesis_options so;
  so.params.window_size = flags.get_int("window", 400);
  so.params.overlap_threshold = flags.get_double("threshold", 0.30);
  so.params.max_targets_per_bus =
      static_cast<int>(flags.get_int("maxtb", 4));
  so.params.use_overlap_conflicts = flags.get_bool("conflicts", true);
  so.params.separate_critical = flags.get_bool("critical", true);
  if (flags.get_string("solver", "specialized") == "milp") {
    so.solver = xbar::solver_kind::generic_milp;
  }
  pick_solver_limits(flags, &so.limits);
  return so;
}

/// --grid mode: a design-space sweep over one application through the
/// explore engine. The scalar flags (--window, --threshold, ...) supply
/// the value of every axis the grid does not sweep. Grid validation is
/// fail-fast: an empty grid or an unknown axis key exits 2 with usage,
/// exactly like an unknown flag, before any simulation starts.
int run_grid_sweep(const flag_set& flags) {
  // Grid mode designs from an app model; the other modes' flags would be
  // silently ignored here, so reject the combinations outright.
  for (const char* other : {"trace", "emit", "save-traces"}) {
    if (flags.has(other)) {
      std::fprintf(stderr,
                   "xbargen: --grid cannot be combined with --%s\n", other);
      return 2;
    }
  }
  explore::sweep_spec spec;
  try {
    spec.grid = explore::parse_grid(flags.get_list("grid"));
    if (spec.grid.empty()) {
      throw invalid_argument_error(
          "empty grid — pass at least one --grid KEY=V1,V2,... axis");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbargen: %s\n", e.what());
    print_usage(stderr);
    return 2;
  }

  // Unswept axes inherit the single-point flags; flags without an axis
  // (--conflicts, --critical) flow in through the synthesis base.
  const auto base = synth_options(flags);
  spec.synth_base = base;
  auto& g = spec.grid;
  if (g.window_sizes.empty()) g.window_sizes = {base.params.window_size};
  if (g.overlap_thresholds.empty()) {
    g.overlap_thresholds = {base.params.overlap_threshold};
  }
  if (g.max_targets_per_bus.empty()) {
    g.max_targets_per_bus = {base.params.max_targets_per_bus};
  }
  if (g.solvers.empty()) g.solvers = {base.solver};

  spec.apps = {pick_app(flags.get_string("app", "mat2"))};
  spec.horizon = flags.get_int("horizon", 120'000);
  const unsigned hw = std::thread::hardware_concurrency();
  spec.threads = static_cast<int>(
      flags.get_int("threads", hw == 0 ? 1 : hw));

  std::shared_ptr<explore::kv_store> store;
  const auto cache_dir = flags.get_string("cache-dir", "");
  if (!cache_dir.empty()) {
    store = std::make_shared<explore::disk_store>(
        cache_dir, cli::cache_max_bytes_flag(flags));
  }
  explore::trace_cache cache(store);
  const auto report = explore::run_sweep(spec, cache);
  std::printf("%s", explore::render_markdown(report).c_str());

  const auto out_dir = flags.get_string("out-dir", "");
  if (!out_dir.empty()) {
    const auto arts = explore::render_artifacts(report, "sweep");
    const auto paths = gen::write_artifacts(arts, out_dir);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      std::printf("emitted     : %-9s -> %s (%zu bytes)\n",
                  arts[i].backend.c_str(), paths[i].c_str(),
                  arts[i].content.size());
    }
  }
  return 0;
}

int design_from_trace(const flag_set& flags) {
  if (flags.has("emit")) {
    std::fprintf(stderr,
                 "xbargen: --emit needs the full two-direction flow; use "
                 "--app instead of --trace\n");
    return 2;
  }
  const auto path = flags.get_string("trace", "");
  const auto t = traffic::trace::load_file(path);
  const auto design = xbar::synthesize_from_trace(t, synth_options(flags));
  std::printf("%s\n", design.to_string().c_str());
  std::printf("savings vs full: %.2fx (%d -> %d buses)\n",
              design.savings_vs_full(), design.num_targets,
              design.num_buses);
  return 0;
}

int design_from_app(const flag_set& flags) {
  const auto app = pick_app(flags.get_string("app", "mat2"));
  // Resolve the backend selection up front: a typo in --emit must fail
  // fast, not after minutes of simulation.
  gen::generate_options gopts;
  if (flags.has("emit")) {
    gopts.backends = parse_emit_list(flags.get_string("emit", "all"));
  }
  xbar::flow_options opts;
  opts.horizon = flags.get_int("horizon", 120'000);
  opts.synth = synth_options(flags);

  const auto save = flags.get_string("save-traces", "");
  if (!save.empty()) {
    if (flags.has("emit")) {
      std::fprintf(stderr,
                   "xbargen: --save-traces only collects traces and emits "
                   "no artifacts; drop --emit or --save-traces\n");
      return 2;
    }
    const auto traces = xbar::collect_traces(app, opts);
    traces.request.save_file(save + ".req");
    traces.response.save_file(save + ".resp");
    std::printf("wrote %s.req (%zu events) and %s.resp (%zu events)\n",
                save.c_str(), traces.request.events().size(), save.c_str(),
                traces.response.events().size());
    return 0;
  }

  // --cache-dir: the staged, store-backed flow shared with the xbar-serve
  // daemon and the other CLIs. The cache identity is the CLI app name, so
  // a design any of them computed under the same directory is a warm hit
  // here: the whole report is decoded from the store and neither the
  // simulator nor the solver runs.
  const auto cache_dir = flags.get_string("cache-dir", "");
  xbar::flow_report report;
  bool from_store = false;
  if (!cache_dir.empty()) {
    const auto store = std::make_shared<explore::disk_store>(
        cache_dir, cli::cache_max_bytes_flag(flags));
    explore::trace_cache cache(store);
    auto result =
        serve::cached_design(app, flags.get_string("app", "mat2"), opts,
                             /*validate=*/true, cache, store.get());
    report = std::move(result.report);
    from_store = result.from_store;
  } else {
    report = xbar::run_design_flow(app, opts);
  }
  std::printf("application : %s (%d cores)\n", report.app_name.c_str(),
              app.total_cores());
  if (!cache_dir.empty()) {
    std::printf("cache       : %s (%s)\n",
                from_store ? "hit — reused stored design" : "miss — computed",
                cache_dir.c_str());
  }
  std::printf("request     : %s\n",
              report.request_design.to_string().c_str());
  std::printf("response    : %s\n",
              report.response_design.to_string().c_str());
  std::printf("buses       : %d -> %d (%.2fx savings)\n", report.full_buses,
              report.designed_buses, report.savings());
  std::printf("avg latency : %.2f cy (full: %.2f, %.2fx)\n",
              report.designed.avg_latency, report.full.avg_latency,
              report.designed.avg_latency / report.full.avg_latency);
  std::printf("max latency : %.0f cy (full: %.0f)\n",
              report.designed.max_latency, report.full.max_latency);
  if (report.designed.avg_critical > 0.0) {
    std::printf("critical avg: %.2f cy (full: %.2f)\n",
                report.designed.avg_critical, report.full.avg_critical);
  }

  // ---- Phase 5: artifact generation.
  if (flags.has("emit")) {
    const auto artifacts = xbar::generate_artifacts(report, gopts);
    const auto out_dir = flags.get_string("out-dir", ".");
    const auto paths = gen::write_artifacts(artifacts, out_dir);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      std::printf("emitted     : %-7s -> %s (%zu bytes)\n",
                  artifacts[i].backend.c_str(), paths[i].c_str(),
                  artifacts[i].content.size());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  if (flags.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (reject_unknown_flags(flags) > 0) return 2;
  try {
    const cli::obs_output obs_out(flags);
    int rc;
    if (flags.has("grid")) {
      rc = run_grid_sweep(flags);
    } else if (flags.has("trace")) {
      rc = design_from_trace(flags);
    } else {
      rc = design_from_app(flags);
    }
    if (rc == 0) obs_out.finish();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbargen: %s\n", e.what());
    return 1;
  }
}
