// xbargen — command-line driver for the full design flow.
//
// Design from a built-in application model:
//   $ ./xbargen --app=mat2 --window=400 --threshold=0.3 --maxtb=4
//
// Design and generate deployable artifacts (phase 5):
//   $ ./xbargen --app=mat2 --emit=sv,dot,json,report --out-dir=/tmp/mat2
//
// Or from a previously captured trace file (one crossbar direction):
//   $ ./xbargen --app=mat2 --save-traces=/tmp/mat2   # writes .req/.resp
//   $ ./xbargen --trace=/tmp/mat2.req --window=400
//
// Prints the designed configuration and (for --app runs) the validated
// latency against the full crossbar. Exit code 0 on success, 2 on bad
// usage (unknown flag, unknown app, malformed --emit list).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/registry.h"
#include "util/flags.h"
#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

namespace {

using namespace stx;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xbargen [--app=NAME | --trace=FILE] [options]\n"
      "  --app=NAME          built-in app "
      "(mat1|mat2|mat2-critical|fft|qsort|des|synthetic)\n"
      "  --trace=FILE        design one direction from a saved trace\n"
      "  --save-traces=PATH  only collect traces, write PATH.req/.resp\n"
      "  --emit=LIST         comma-separated artifact backends "
      "(sv|dot|json|report|all)\n"
      "  --out-dir=DIR       where --emit writes artifacts (default .)\n"
      "  --window=N          analysis window size in cycles (400)\n"
      "  --threshold=F       overlap threshold fraction (0.30)\n"
      "  --maxtb=N           max targets per bus, 0=off (4)\n"
      "  --conflicts=BOOL    overlap-conflict pre-processing (true)\n"
      "  --critical=BOOL     separate critical streams (true)\n"
      "  --solver=KIND       specialized|milp (specialized)\n"
      "  --horizon=N         simulation cycles (120000)\n");
}

/// Every flag xbargen understands; anything else is an error (exit 2),
/// never silently ignored.
const std::vector<std::string> kKnownFlags = {
    "app",      "trace",    "save-traces", "emit",     "out-dir",
    "window",   "threshold", "maxtb",      "conflicts", "critical",
    "solver",   "horizon",  "help",
};

int reject_unknown_flags(const flag_set& flags) {
  int bad = 0;
  for (const auto& name : flags.names()) {
    if (std::find(kKnownFlags.begin(), kKnownFlags.end(), name) ==
        kKnownFlags.end()) {
      std::fprintf(stderr, "xbargen: unknown flag --%s\n", name.c_str());
      ++bad;
    }
  }
  if (bad > 0) print_usage(stderr);
  return bad;
}

workloads::app_spec pick_app(const std::string& name) {
  using namespace stx::workloads;
  if (name == "mat1") return make_mat1();
  if (name == "mat2") return make_mat2();
  if (name == "mat2-critical") return make_mat2_critical();
  if (name == "fft") return make_fft();
  if (name == "qsort") return make_qsort();
  if (name == "des") return make_des();
  if (name == "synthetic") return make_synthetic();
  std::fprintf(stderr,
               "xbargen: unknown --app=%s "
               "(mat1|mat2|mat2-critical|fft|qsort|des|synthetic)\n",
               name.c_str());
  std::exit(2);
}

/// Parses --emit into backend registry names; "all" (or an empty item
/// list) selects every registered backend. Unknown names exit 2.
std::vector<std::string> parse_emit_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const auto comma = list.find(',', pos);
    const auto item = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (item == "all") {
      return gen::registry::instance().names();
    }
    if (!item.empty()) {
      if (gen::registry::instance().find(item) == nullptr) {
        std::fprintf(stderr, "xbargen: unknown --emit backend '%s'\n",
                     item.c_str());
        std::fprintf(stderr, "  registered:");
        for (const auto& n : gen::registry::instance().names()) {
          std::fprintf(stderr, " %s", n.c_str());
        }
        std::fprintf(stderr, "\n");
        std::exit(2);
      }
      out.push_back(item);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) return gen::registry::instance().names();
  return out;
}

xbar::synthesis_options synth_options(const flag_set& flags) {
  xbar::synthesis_options so;
  so.params.window_size = flags.get_int("window", 400);
  so.params.overlap_threshold = flags.get_double("threshold", 0.30);
  so.params.max_targets_per_bus =
      static_cast<int>(flags.get_int("maxtb", 4));
  so.params.use_overlap_conflicts = flags.get_bool("conflicts", true);
  so.params.separate_critical = flags.get_bool("critical", true);
  if (flags.get_string("solver", "specialized") == "milp") {
    so.solver = xbar::solver_kind::generic_milp;
  }
  return so;
}

int design_from_trace(const flag_set& flags) {
  if (flags.has("emit")) {
    std::fprintf(stderr,
                 "xbargen: --emit needs the full two-direction flow; use "
                 "--app instead of --trace\n");
    return 2;
  }
  const auto path = flags.get_string("trace", "");
  const auto t = traffic::trace::load_file(path);
  const auto design = xbar::synthesize_from_trace(t, synth_options(flags));
  std::printf("%s\n", design.to_string().c_str());
  std::printf("savings vs full: %.2fx (%d -> %d buses)\n",
              design.savings_vs_full(), design.num_targets,
              design.num_buses);
  return 0;
}

int design_from_app(const flag_set& flags) {
  const auto app = pick_app(flags.get_string("app", "mat2"));
  // Resolve the backend selection up front: a typo in --emit must fail
  // fast, not after minutes of simulation.
  gen::generate_options gopts;
  if (flags.has("emit")) {
    gopts.backends = parse_emit_list(flags.get_string("emit", "all"));
  }
  xbar::flow_options opts;
  opts.horizon = flags.get_int("horizon", 120'000);
  opts.synth = synth_options(flags);

  const auto save = flags.get_string("save-traces", "");
  if (!save.empty()) {
    if (flags.has("emit")) {
      std::fprintf(stderr,
                   "xbargen: --save-traces only collects traces and emits "
                   "no artifacts; drop --emit or --save-traces\n");
      return 2;
    }
    const auto traces = xbar::collect_traces(app, opts);
    traces.request.save_file(save + ".req");
    traces.response.save_file(save + ".resp");
    std::printf("wrote %s.req (%zu events) and %s.resp (%zu events)\n",
                save.c_str(), traces.request.events().size(), save.c_str(),
                traces.response.events().size());
    return 0;
  }

  const auto report = xbar::run_design_flow(app, opts);
  std::printf("application : %s (%d cores)\n", report.app_name.c_str(),
              app.total_cores());
  std::printf("request     : %s\n",
              report.request_design.to_string().c_str());
  std::printf("response    : %s\n",
              report.response_design.to_string().c_str());
  std::printf("buses       : %d -> %d (%.2fx savings)\n", report.full_buses,
              report.designed_buses, report.savings());
  std::printf("avg latency : %.2f cy (full: %.2f, %.2fx)\n",
              report.designed.avg_latency, report.full.avg_latency,
              report.designed.avg_latency / report.full.avg_latency);
  std::printf("max latency : %.0f cy (full: %.0f)\n",
              report.designed.max_latency, report.full.max_latency);
  if (report.designed.avg_critical > 0.0) {
    std::printf("critical avg: %.2f cy (full: %.2f)\n",
                report.designed.avg_critical, report.full.avg_critical);
  }

  // ---- Phase 5: artifact generation.
  if (flags.has("emit")) {
    const auto artifacts = xbar::generate_artifacts(report, gopts);
    const auto out_dir = flags.get_string("out-dir", ".");
    const auto paths = gen::write_artifacts(artifacts, out_dir);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      std::printf("emitted     : %-7s -> %s (%zu bytes)\n",
                  artifacts[i].backend.c_str(), paths[i].c_str(),
                  artifacts[i].content.size());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  if (flags.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (reject_unknown_flags(flags) > 0) return 2;
  try {
    if (flags.has("trace")) return design_from_trace(flags);
    return design_from_app(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbargen: %s\n", e.what());
    return 1;
  }
}
