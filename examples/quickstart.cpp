// Quickstart: design an application-specific STbus crossbar in ~40 lines.
//
//   $ ./quickstart [--horizon=120000] [--window=2000]
//
// Runs the paper's 4-phase flow (Fig. 3) on the Mat2 benchmark: simulate
// with full crossbars, analyse the traffic in windows, synthesise the
// minimal crossbars, validate by simulation, and print the outcome.
#include <cstdio>

#include "util/flags.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

int main(int argc, char** argv) {
  const stx::flag_set flags(argc, argv);

  // The application: 9 ARM cores, 9 private memories, shared memory,
  // semaphore and interrupt device (21 cores, Fig. 2a).
  const auto app = stx::workloads::make_mat2();

  stx::xbar::flow_options opts;
  opts.horizon = flags.get_int("horizon", 120'000);
  opts.synth.params.window_size = flags.get_int("window", 400);
  opts.synth.params.overlap_threshold = flags.get_double("threshold", 0.30);
  opts.synth.params.max_targets_per_bus =
      static_cast<int>(flags.get_int("maxtb", 4));

  const auto report = stx::xbar::run_design_flow(app, opts);

  std::printf("application        : %s (%d initiators, %d targets)\n",
              report.app_name.c_str(), app.num_initiators, app.num_targets);
  std::printf("request  crossbar  : %s\n",
              report.request_design.to_string().c_str());
  std::printf("response crossbar  : %s\n",
              report.response_design.to_string().c_str());
  std::printf("buses, full vs ours: %d vs %d  (%.2fx savings)\n",
              report.full_buses, report.designed_buses, report.savings());
  std::printf("avg latency  full  : %6.2f cycles\n",
              report.full.avg_latency);
  std::printf("avg latency  ours  : %6.2f cycles (%.2fx of full)\n",
              report.designed.avg_latency,
              report.designed.avg_latency / report.full.avg_latency);
  std::printf("max latency  full  : %6.0f cycles\n",
              report.full.max_latency);
  std::printf("max latency  ours  : %6.0f cycles (%.2fx of full)\n",
              report.designed.max_latency,
              report.designed.max_latency / report.full.max_latency);
  return 0;
}
