#!/usr/bin/env bash
# CI gate: tier-1 build + tests with -Wall -Wextra -Werror, and optionally
# the ASan/UBSan configuration.
#
#   scripts/check.sh          # strict warnings build + ctest
#   scripts/check.sh --asan   # additionally build & test under ASan/UBSan
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "== configure ($preset) =="
  cmake --preset "$preset"
  echo "== build ($preset) =="
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "== test ($preset) =="
  ctest --preset "$preset" -j "$(nproc)"
}

run_preset strict

if [[ "${1:-}" == "--asan" ]]; then
  run_preset asan
fi

echo "check.sh: all green"
