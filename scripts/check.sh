#!/usr/bin/env bash
# CI gate: tier-1 build + tests with -Wall -Wextra -Werror, and optionally
# the ASan/UBSan configuration.
#
#   scripts/check.sh                     # strict warnings build + ctest
#   scripts/check.sh --asan              # additionally build & test under ASan/UBSan
#   scripts/check.sh --preset asan       # run exactly one preset
#   scripts/check.sh --jobs 4            # cap build/test parallelism
#   scripts/check.sh --labels sweep      # only ctest tests with this label
#                                        # (labels: unit|sweep|fuzz|bench)
#
# Without --labels, the wall-clock-sensitive `bench` label (the perf
# guard) is excluded: it belongs to the bench-smoke CI job, not the
# strict/asan build matrix, where sanitizer overhead and noisy shared
# runners would make a timing comparison flaky. Run it explicitly with
# --labels bench (or `ctest -L bench`).
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  sed -n '2,10p' "$0" | sed 's/^# \{0,1\}//'
}

die() {
  echo "check.sh: $*" >&2
  exit 1
}

presets=()
jobs="$(nproc 2>/dev/null || echo 2)"
labels=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset)
      [[ $# -ge 2 ]] || die "--preset needs a name (strict|asan|default)"
      presets+=("$2")
      shift 2
      ;;
    --preset=*)
      presets+=("${1#--preset=}")
      shift
      ;;
    --jobs)
      [[ $# -ge 2 ]] || die "--jobs needs a number"
      jobs="$2"
      shift 2
      ;;
    --jobs=*)
      jobs="${1#--jobs=}"
      shift
      ;;
    --labels)
      [[ $# -ge 2 ]] || die "--labels needs a ctest -L regex (unit|sweep|fuzz|bench)"
      labels="$2"
      shift 2
      ;;
    --labels=*)
      labels="${1#--labels=}"
      shift
      ;;
    --asan)
      presets+=(strict asan)
      shift
      ;;
    --help | -h)
      usage
      exit 0
      ;;
    *)
      usage >&2
      die "unknown argument '$1'"
      ;;
  esac
done
[[ ${#presets[@]} -gt 0 ]] || presets=(strict)
# Deduplicate, keeping first occurrences: `--preset strict --asan` must
# not run the strict cycle twice. Empty names would silently run nothing
# and still report green, so they are an error.
unique=()
for p in "${presets[@]}"; do
  [[ -n "$p" ]] || die "--preset name must not be empty"
  for u in "${unique[@]:-}"; do
    [[ "$u" == "$p" ]] && continue 2
  done
  unique+=("$p")
done
presets=("${unique[@]}")
[[ "$jobs" =~ ^[0-9]+$ && "$jobs" -ge 1 ]] || die "--jobs must be a positive integer, got '$jobs'"

# Fail fast with a clear message when the toolchain is missing — a bare
# "cmake: command not found" mid-run is a worse diagnostic.
command -v cmake > /dev/null 2>&1 \
  || die "cmake not found on PATH — install cmake >= 3.21 (apt-get install cmake)"
compiler="${CXX:-}"
if [[ -n "$compiler" ]]; then
  command -v "$compiler" > /dev/null 2>&1 \
    || die "CXX='$compiler' not found on PATH"
else
  command -v c++ > /dev/null 2>&1 || command -v g++ > /dev/null 2>&1 \
    || command -v clang++ > /dev/null 2>&1 \
    || die "no C++ compiler found on PATH — install g++ or clang++"
fi

run_preset() {
  local preset="$1"
  echo "== configure ($preset) =="
  cmake --preset "$preset"
  echo "== build ($preset) =="
  cmake --build --preset "$preset" -j "$jobs"
  echo "== test ($preset${labels:+, labels: $labels}) =="
  # Tests carry TIMEOUT properties and unit|sweep|fuzz|bench labels (see
  # tests/CMakeLists.txt), so CI can shard with --labels. A label regex
  # matching nothing must fail, not report green over zero tests. The
  # default run excludes `bench` (timing-sensitive perf guard).
  if [[ -n "$labels" ]]; then
    ctest --preset "$preset" -j "$jobs" --no-tests=error -L "$labels"
  else
    ctest --preset "$preset" -j "$jobs" --no-tests=error -LE bench
  fi
}

for preset in "${presets[@]}"; do
  run_preset "$preset"
done

echo "check.sh: all green"
