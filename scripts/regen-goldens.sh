#!/usr/bin/env bash
# Refreshes the golden flow_report snapshots under tests/golden/.
#
# The snapshot inputs (apps, horizon, window, seed) are pinned in
# src/testkit/golden.cpp; this script only rebuilds and re-runs them, so
# the committed goldens, `xbar-fuzz --regen-goldens` and the
# testkit_golden_test can never disagree. Run it after an INTENTIONAL
# flow-output change, eyeball `git diff tests/golden/`, and commit the
# result together with the change that caused it.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default > /dev/null
cmake --build --preset default -j "$(nproc 2>/dev/null || echo 2)" \
  --target xbar_fuzz > /dev/null
./build/examples/xbar-fuzz --regen-goldens=tests/golden
echo "regen-goldens.sh: review 'git diff tests/golden/' before committing"
